#include "src/medusa/devices.h"

#include "src/runtime/check.h"

namespace pandora {
namespace {

std::unique_ptr<SampleSource> MakeSource(MicKind kind, double frequency, double amplitude) {
  switch (kind) {
    case MicKind::kSine:
      return std::make_unique<SineSource>(frequency, amplitude);
    case MicKind::kSpeech:
      return std::make_unique<SpeechLikeSource>(amplitude);
    case MicKind::kSilence:
      return std::make_unique<SilenceSource>();
  }
  return std::make_unique<SilenceSource>();
}

}  // namespace

// --- NetMicrophone -----------------------------------------------------------

NetMicrophone::NetMicrophone(Scheduler* sched, AtmNetwork* net, Options options,
                             ReportSink* report_sink)
    : MedusaDevice(sched, net, options.name),
      options_(options),
      source_(MakeSource(options.kind, options.frequency, options.amplitude)),
      blocks_(sched, options.name + ".blocks"),
      codec_in_(sched, {.name = options.name + ".codec", .clock_drift = options.clock_drift},
                source_.get(), &blocks_),
      segments_(sched, options.name + ".segments"),
      sender_(sched,
              {.name = options.name + ".sender",
               .stream = options.stream,
               .blocks_per_segment = options.blocks_per_segment},
              &blocks_, &pool_, &segments_, nullptr, nullptr, report_sink) {}

void NetMicrophone::Start() {
  PANDORA_CHECK(!started_);
  started_ = true;
  codec_in_.Start();
  sender_.Start();
  sched_->Spawn(UplinkProc(), name_ + ".uplink", Priority::kHigh);
}

Process NetMicrophone::UplinkProc() {
  for (;;) {
    SegmentRef ref = co_await segments_.Receive();
    if (vcis_.empty()) {
      continue;  // nobody listening yet: the codec data is discarded
    }
    // Encode once; every listener's NetTx shares the same wire bytes (the
    // VCI relabels per circuit).
    co_await SendEncodedSegment(port_, std::move(ref), vcis_, &deep_copies_);
  }
}

// --- NetSpeaker --------------------------------------------------------------

NetSpeaker::NetSpeaker(Scheduler* sched, AtmNetwork* net, Options options,
                       ReportSink* report_sink)
    : MedusaDevice(sched, net, options.name),
      options_(options),
      incoming_(sched, options.name + ".in"),
      net_in_(sched, {.name = options.name + ".netin"}, port_, &pool_, &incoming_, report_sink,
              &deep_copies_),
      bank_(options.clawback),
      receiver_(sched, {.name = options.name + ".receiver"}, &incoming_, &bank_, nullptr,
                report_sink),
      codec_out_(sched, {.name = options.name + ".codec",
                         .clock_drift = options.clock_drift,
                         .record_samples = options.record_samples}),
      mixer_(sched,
             AudioMixerOptions{.name = options.name + ".mixer",
                               .clock_drift = options.clock_drift},
             &bank_, nullptr, &codec_out_) {}

void NetSpeaker::Start() {
  PANDORA_CHECK(!started_);
  started_ = true;
  net_in_.Start();
  receiver_.Start();
  codec_out_.Start();
  mixer_.Start();
}

// --- NetCamera ---------------------------------------------------------------

NetCamera::NetCamera(Scheduler* sched, AtmNetwork* net, Options options, ReportSink* report_sink)
    : MedusaDevice(sched, net, options.name),
      options_(options),
      pattern_(options.width),
      framestore_(sched, &pattern_, options.width, options.height),
      segments_(sched, options.name + ".segments"),
      capture_(sched,
               VideoCaptureOptions{.name = options.name + ".capture",
                                   .stream = options.stream,
                                   .rect = options.rect,
                                   .rate_numer = options.rate_numer,
                                   .rate_denom = options.rate_denom,
                                   .segments_per_frame = options.segments_per_frame,
                                   .coding = options.coding},
               &framestore_, &pool_, &segments_, nullptr, report_sink) {}

void NetCamera::Start() {
  PANDORA_CHECK(!started_);
  started_ = true;
  capture_.Start();
  sched_->Spawn(UplinkProc(), name_ + ".uplink", Priority::kHigh);
}

Process NetCamera::UplinkProc() {
  for (;;) {
    SegmentRef ref = co_await segments_.Receive();
    if (vcis_.empty()) {
      continue;
    }
    co_await SendEncodedSegment(port_, std::move(ref), vcis_, &deep_copies_);
  }
}

// --- NetDisplay --------------------------------------------------------------

NetDisplay::NetDisplay(Scheduler* sched, AtmNetwork* net, Options options,
                       ReportSink* report_sink)
    : MedusaDevice(sched, net, options.name),
      options_(options),
      incoming_(sched, options.name + ".in"),
      net_in_(sched, {.name = options.name + ".netin"}, port_, &pool_, &incoming_, report_sink,
              &deep_copies_),
      display_(sched,
               VideoDisplayOptions{.name = options.name + ".screen",
                                   .width = options.width,
                                   .height = options.height},
               &incoming_, report_sink) {}

void NetDisplay::Start() {
  PANDORA_CHECK(!started_);
  started_ = true;
  net_in_.Start();
  display_.Start();
}

// --- Plumbing ----------------------------------------------------------------

StreamId ConnectAudio(AtmNetwork* net, NetMicrophone* mic, NetSpeaker* speaker,
                      const std::vector<NetHop*>& path, const HopQuality& direct) {
  StreamId at_speaker = speaker->AllocateInput();
  net->OpenCircuit(mic->port(), at_speaker, speaker->port(), path, direct);
  mic->AddListener(at_speaker);
  return at_speaker;
}

StreamId ConnectVideo(AtmNetwork* net, NetCamera* camera, NetDisplay* display,
                      const std::vector<NetHop*>& path, const HopQuality& direct) {
  StreamId at_display = display->AllocateInput();
  net->OpenCircuit(camera->port(), at_display, display->port(), path, direct);
  camera->AddViewer(at_display);
  return at_display;
}

}  // namespace pandora
