// Medusa: Pandora exploded into standalone network peripherals
// (paper section 5.2, future work).
//
// "The next implementation (project Medusa) encompasses a wider range of
// operating environments including... peripherals attached individually to
// the network...  The main difference in Medusa is that the Pandora boards
// communicating over a network of links and ATM rings have been replaced by
// Medusa boards communicating over an ATM switch fabric so that we have an
// exploded Pandora...  the principles employed in Pandora will still be
// applicable."
//
// Each device owns an AtmPort on the shared fabric (100 Mbit/s links, per
// the paper's upgrade) and reuses the Pandora stream machinery directly:
// the microphone runs the codec + block handler, the speaker runs the
// receiver + clawback bank + mixer, the camera runs the framestore +
// capture pipeline, the display runs frame assembly.  There is no server
// transputer: streams "are more independent than in Pandora, being split
// apart into different chains of processes once they leave the input device
// driver".
#ifndef PANDORA_SRC_MEDUSA_DEVICES_H_
#define PANDORA_SRC_MEDUSA_DEVICES_H_

#include <memory>
#include <string>
#include <vector>

#include "src/audio/codec.h"
#include "src/audio/mixer.h"
#include "src/audio/receiver.h"
#include "src/audio/sender.h"
#include "src/audio/signal.h"
#include "src/buffer/clawback.h"
#include "src/buffer/pool.h"
#include "src/control/report.h"
#include "src/net/atm.h"
#include "src/runtime/scheduler.h"
#include "src/server/netio.h"
#include "src/video/capture.h"
#include "src/video/display.h"
#include "src/video/framestore.h"

namespace pandora {

inline constexpr int64_t kMedusaLinkBps = 100'000'000;

// Shared base: a port on the fabric plus a local buffer pool.
class MedusaDevice {
 public:
  MedusaDevice(Scheduler* sched, AtmNetwork* net, const std::string& name,
               size_t pool_buffers = 64, int64_t egress_bps = kMedusaLinkBps)
      : sched_(sched),
        name_(name),
        port_(net->AddPort(name + ".port", egress_bps, pool_buffers)),
        pool_(sched, name + ".pool", pool_buffers) {}

  virtual ~MedusaDevice() = default;

  const std::string& name() const { return name_; }
  AtmPort* port() { return port_; }
  BufferPool& pool() { return pool_; }
  // Wire-path payload copies (encodes at senders, decodes at receivers).
  uint64_t deep_copies() const { return deep_copies_; }

 protected:
  Scheduler* sched_;
  std::string name_;
  AtmPort* port_;
  BufferPool pool_;
  uint64_t deep_copies_ = 0;
};

// A microphone on the network: codec -> block handler -> fabric.  The
// stream can be sent to several destinations (per-VCI wire copies).
class NetMicrophone : public MedusaDevice {
 public:
  struct Options {
    std::string name = "medusa.mic";
    StreamId stream = 1;
    MicKind kind = MicKind::kSine;
    double frequency = 440.0;
    double amplitude = 9000.0;
    double clock_drift = 0.0;
    int blocks_per_segment = kDefaultBlocksPerSegment;
  };

  NetMicrophone(Scheduler* sched, AtmNetwork* net, Options options,
                ReportSink* report_sink = nullptr);

  void Start();

  // Adds a circuit to one more listener; the VCI is the stream id the
  // far-end speaker expects.
  void AddListener(Vci vci) { vcis_.push_back(vci); }

  AudioSender& sender() { return sender_; }
  uint64_t segments_sent() const { return sender_.segments_sent(); }

 private:
  Process UplinkProc();

  Options options_;
  std::unique_ptr<SampleSource> source_;
  Channel<AudioBlock> blocks_;
  CodecInput codec_in_;
  Channel<SegmentRef> segments_;
  AudioSender sender_;
  std::vector<Vci> vcis_;
  bool started_ = false;
};

// A loudspeaker on the network: fabric -> receiver -> clawback -> mixer ->
// codec.  Mixes any number of incoming streams, exactly like the Pandora
// audio board ("no limit is placed on the number of incoming streams").
class NetSpeaker : public MedusaDevice {
 public:
  struct Options {
    std::string name = "medusa.speaker";
    double clock_drift = 0.0;
    bool record_samples = false;
    ClawbackConfig clawback;
  };

  NetSpeaker(Scheduler* sched, AtmNetwork* net, Options options,
             ReportSink* report_sink = nullptr);

  void Start();

  // Allocates a stream id for one incoming source (used as its VCI).
  StreamId AllocateInput() { return next_stream_++; }

  AudioReceiver& receiver() { return receiver_; }
  AudioMixer& mixer() { return mixer_; }
  CodecOutput& codec_out() { return codec_out_; }
  ClawbackBank& bank() { return bank_; }

 private:
  Options options_;
  Channel<SegmentRef> incoming_;
  NetworkInput net_in_;
  ClawbackBank bank_;
  AudioReceiver receiver_;
  CodecOutput codec_out_;
  AudioMixer mixer_;
  StreamId next_stream_ = 1;
  bool started_ = false;
};

// A camera on the network: framestore -> capture -> fabric.
class NetCamera : public MedusaDevice {
 public:
  struct Options {
    std::string name = "medusa.camera";
    StreamId stream = 1;
    int width = 64;
    int height = 48;
    Rect rect{0, 0, 64, 48};
    int rate_numer = 1;
    int rate_denom = 1;
    int segments_per_frame = 4;
    LineCoding coding = LineCoding::kDpcmLine;
  };

  NetCamera(Scheduler* sched, AtmNetwork* net, Options options,
            ReportSink* report_sink = nullptr);

  void Start();
  void AddViewer(Vci vci) { vcis_.push_back(vci); }

  VideoCapture& capture() { return capture_; }
  FrameStore& framestore() { return framestore_; }

 private:
  Process UplinkProc();

  Options options_;
  MovingBarPattern pattern_;
  FrameStore framestore_;
  Channel<SegmentRef> segments_;
  VideoCapture capture_;
  std::vector<Vci> vcis_;
  bool started_ = false;
};

// A display on the network: fabric -> frame assembly -> screen.
class NetDisplay : public MedusaDevice {
 public:
  struct Options {
    std::string name = "medusa.display";
    int width = 64;
    int height = 48;
  };

  NetDisplay(Scheduler* sched, AtmNetwork* net, Options options,
             ReportSink* report_sink = nullptr);

  void Start();

  StreamId AllocateInput() { return next_stream_++; }
  VideoDisplay& display() { return display_; }

 private:
  Options options_;
  Channel<SegmentRef> incoming_;
  NetworkInput net_in_;
  VideoDisplay display_;
  StreamId next_stream_ = 1;
  bool started_ = false;
};

// Host-side plumbing: connect a microphone to a speaker (returns the stream
// id at the speaker), or a camera to a display.
StreamId ConnectAudio(AtmNetwork* net, NetMicrophone* mic, NetSpeaker* speaker,
                      const std::vector<NetHop*>& path = {},
                      const HopQuality& direct = HopQuality{});
StreamId ConnectVideo(AtmNetwork* net, NetCamera* camera, NetDisplay* display,
                      const std::vector<NetHop*>& path = {},
                      const HopQuality& direct = HopQuality{});

}  // namespace pandora

#endif  // PANDORA_SRC_MEDUSA_DEVICES_H_
