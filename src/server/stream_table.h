// Per-stream routing and state tables on the server transputer (section 3.4).
//
// "Any process which handles a variety of streams in differing manners will
// use the stream number to index private tables that describe the
// operations to be performed on the segments of each stream (e.g. which
// processes to send them to, what outgoing VCI to use etc.) and hold the
// state of that stream (e.g. number of dropped segments...).  The tables
// are updated without disturbing the flows of data when commands are
// received" — principle 6.
#ifndef PANDORA_SRC_SERVER_STREAM_TABLE_H_
#define PANDORA_SRC_SERVER_STREAM_TABLE_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "src/segment/constants.h"
#include "src/server/degrade.h"

namespace pandora {

// Identifies one switch output (an output device handler's buffer).
using DestinationId = int;
inline constexpr DestinationId kInvalidDestination = -1;

struct StreamRoute {
  StreamAttrs attrs;
  // VCIs used when the destination is the network: one per far-end copy
  // (a tannoy stream fans out to several circuits).
  std::vector<Vci> out_vcis;
  std::vector<DestinationId> destinations;
  uint64_t segments = 0;
  uint64_t drops = 0;  // segments discarded at the switch for this stream
};

class StreamTable {
 public:
  // Creates or fetches a stream's entry; stamps open order on creation.
  StreamRoute& Open(StreamId stream, bool incoming, bool audio) {
    auto it = table_.find(stream);
    if (it == table_.end()) {
      StreamRoute route;
      route.attrs.stream = stream;
      route.attrs.incoming = incoming;
      route.attrs.audio = audio;
      route.attrs.open_order = next_open_order_++;
      it = table_.emplace(stream, std::move(route)).first;
      ++version_;
    }
    return it->second;
  }

  StreamRoute* Find(StreamId stream) {
    auto it = table_.find(stream);
    return it == table_.end() ? nullptr : &it->second;
  }
  const StreamRoute* Find(StreamId stream) const {
    auto it = table_.find(stream);
    return it == table_.end() ? nullptr : &it->second;
  }

  void AddDestination(StreamId stream, DestinationId destination) {
    StreamRoute* route = Find(stream);
    if (route == nullptr) {
      return;
    }
    for (DestinationId d : route->destinations) {
      if (d == destination) {
        return;
      }
    }
    route->destinations.push_back(destination);
    ++version_;
  }

  void RemoveDestination(StreamId stream, DestinationId destination) {
    StreamRoute* route = Find(stream);
    if (route == nullptr) {
      return;
    }
    if (std::erase(route->destinations, destination) > 0) {
      ++version_;
    }
  }

  // Re-parents a stream in ONE table mutation: `from` is replaced by `to`
  // in place, so there is no intermediate state where the stream is routed
  // to neither (the overlay's repair hook — a churn re-parent must never
  // open a delivery gap of its own).  If `to` is already routed, `from` is
  // simply removed.  Returns false (no mutation) when `from` is not routed.
  bool MoveDestination(StreamId stream, DestinationId from, DestinationId to) {
    StreamRoute* route = Find(stream);
    if (route == nullptr) {
      return false;
    }
    auto it = std::find(route->destinations.begin(), route->destinations.end(), from);
    if (it == route->destinations.end()) {
      return false;
    }
    if (std::find(route->destinations.begin(), route->destinations.end(), to) !=
        route->destinations.end()) {
      route->destinations.erase(it);
    } else {
      *it = to;
    }
    ++version_;
    return true;
  }

  void RemoveVci(StreamId stream, Vci vci) {
    StreamRoute* route = Find(stream);
    if (route == nullptr) {
      return;
    }
    std::erase(route->out_vcis, vci);
  }

  void Close(StreamId stream) {
    if (table_.erase(stream) > 0) {
      ++version_;
    }
  }

  // Streams currently routed towards `destination` (for the degrader).
  std::vector<StreamAttrs> ActiveTowards(DestinationId destination) const {
    std::vector<StreamAttrs> active;
    for (const auto& [stream, route] : table_) {
      for (DestinationId d : route.destinations) {
        if (d == destination) {
          active.push_back(route.attrs);
          break;
        }
      }
    }
    return active;
  }

  size_t size() const { return table_.size(); }
  const std::map<StreamId, StreamRoute>& entries() const { return table_; }

  // Bumped on every mutation that can change some ActiveTowards() result
  // (stream open/close, destination add/remove) — NOT on per-segment
  // bookkeeping or VCI edits.  Starts at 1 so 0 works as a "never filled"
  // sentinel for caches keyed on it.
  uint64_t version() const { return version_; }

 private:
  std::map<StreamId, StreamRoute> table_;
  uint64_t next_open_order_ = 1;
  uint64_t version_ = 1;
};

}  // namespace pandora

#endif  // PANDORA_SRC_SERVER_STREAM_TABLE_H_
