// Overload degradation policy: principles 1-3 (paper section 2.1).
//
// When a destination's decoupling buffer fills, something must be thrown
// away.  The paper ranks victims:
//   P1: incoming streams degrade before outgoing ones (the overloaded
//       user's own transmissions survive so the far end sees the problem
//       last) — REVERSED for repositories, which must record accurately;
//   P2: video degrades before audio (people can talk the problem through);
//   P3: the longest-open streams degrade first (an unexpected incoming
//       call gets bandwidth without the user first closing old streams).
//
// AdaptiveDegrader turns buffer-full signals into a suppression set over
// the active streams, sized by recent pressure and decayed by quiet time —
// timing and buffering decisions adapt to locally observed conditions
// (principle 8), no global coordination.
#ifndef PANDORA_SRC_SERVER_DEGRADE_H_
#define PANDORA_SRC_SERVER_DEGRADE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/runtime/time.h"
#include "src/segment/constants.h"

namespace pandora {

struct StreamAttrs {
  StreamId stream = kInvalidStream;
  bool incoming = false;  // arrived over the network (vs locally produced)
  bool audio = false;
  uint64_t open_order = 0;  // allocation stamp; lower = open longer

  bool operator==(const StreamAttrs&) const = default;
};

// True if `a` should be degraded before `b`.  `recording_priority` reverses
// the incoming/outgoing term (repositories protect incoming recordings).
inline bool DegradesBefore(const StreamAttrs& a, const StreamAttrs& b,
                           bool recording_priority = false) {
  bool a_incoming = recording_priority ? !a.incoming : a.incoming;
  bool b_incoming = recording_priority ? !b.incoming : b.incoming;
  if (a_incoming != b_incoming) {
    return a_incoming;  // P1: incoming first
  }
  if (a.audio != b.audio) {
    return !a.audio;  // P2: video first
  }
  return a.open_order < b.open_order;  // P3: oldest first
}

class AdaptiveDegrader {
 public:
  struct Options {
    // Quiet time after which one stream is released from suppression.
    Duration recovery_period = Millis(200);
    bool recording_priority = false;
  };

  AdaptiveDegrader() : AdaptiveDegrader(Options{}) {}
  explicit AdaptiveDegrader(const Options& options) : options_(options) {}

  // A destination buffer reported FULL at time `now`: widen suppression.
  void OnBufferFull(Time now) {
    ++suppressed_count_;
    last_pressure_ = now;
    next_recovery_ = now + options_.recovery_period;
    ++pressure_events_;
  }

  // Called on traffic; shrinks suppression after quiet periods.
  void MaybeRecover(Time now) {
    while (suppressed_count_ > 0 && now >= next_recovery_) {
      --suppressed_count_;
      next_recovery_ += options_.recovery_period;
    }
  }

  // Should `victim`'s segment be dropped, given the streams currently
  // active towards this destination?  The `suppressed_count_` most
  // degradable streams are shed.
  //
  // The degradation ordering is a pure function of the active membership
  // (attrs never change after open), so it is sorted once per membership
  // change rather than once per segment; a suppression-count change only
  // moves the shed prefix boundary, which costs a prefix scan, not a sort.
  bool ShouldDrop(const StreamAttrs& victim, const std::vector<StreamAttrs>& active) const {
    if (suppressed_count_ == 0 || active.empty()) {
      return false;
    }
    if (active != cached_active_) {
      cached_active_ = active;
      cached_order_ = active;
      std::sort(cached_order_.begin(), cached_order_.end(),
                [this](const StreamAttrs& a, const StreamAttrs& b) {
                  return DegradesBefore(a, b, options_.recording_priority);
                });
    }
    size_t shed = std::min(static_cast<size_t>(suppressed_count_), cached_order_.size());
    for (size_t i = 0; i < shed; ++i) {
      if (cached_order_[i].stream == victim.stream) {
        return true;
      }
    }
    return false;
  }

  int suppressed_count() const { return suppressed_count_; }
  uint64_t pressure_events() const { return pressure_events_; }

 private:
  Options options_;
  int suppressed_count_ = 0;
  Time last_pressure_ = 0;
  Time next_recovery_ = 0;
  uint64_t pressure_events_ = 0;
  // Degradation-ordering cache: `cached_active_` is the membership the
  // cache was built from (as handed in), `cached_order_` the same streams
  // in DegradesBefore order.  Mutable: the cache is invisible to callers.
  mutable std::vector<StreamAttrs> cached_active_;
  mutable std::vector<StreamAttrs> cached_order_;
};

}  // namespace pandora

#endif  // PANDORA_SRC_SERVER_DEGRADE_H_
