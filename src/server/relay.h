// LinkRelay: an inter-board Inmos link carrying segment references.
//
// Boards exchange commands and audio over 20Mbit/s links and video over
// 100Mbit/s fifos (fig 1.2).  A relay serializes each segment at the link
// rate; rendezvous on its input provides the hardware's natural back
// pressure ("if a process writes to a link before the previous message has
// been received... the writer will be blocked", section 3.5).
#ifndef PANDORA_SRC_SERVER_RELAY_H_
#define PANDORA_SRC_SERVER_RELAY_H_

#include <string>

#include "src/buffer/pool.h"
#include "src/runtime/channel.h"
#include "src/runtime/check.h"
#include "src/runtime/resource.h"
#include "src/runtime/scheduler.h"

namespace pandora {

inline constexpr int64_t kInmosLinkBps = 20'000'000;   // serial link
inline constexpr int64_t kVideoFifoBps = 100'000'000;  // memory-mapped fifo

class LinkRelay {
 public:
  LinkRelay(Scheduler* sched, std::string name, Channel<SegmentRef>* in, Channel<SegmentRef>* out,
            int64_t bits_per_second = kInmosLinkBps)
      : sched_(sched),
        name_(std::move(name)),
        in_(in),
        out_(out),
        gate_(sched, name_ + ".gate", bits_per_second) {}

  void Start(Priority priority = Priority::kHigh) {
    PANDORA_CHECK(!started_);
    started_ = true;
    sched_->Spawn(Run(), name_, priority);
  }

  BandwidthGate& gate() { return gate_; }
  uint64_t forwarded() const { return forwarded_; }

 private:
  Process Run() {
    for (;;) {
      SegmentRef ref = co_await in_->Receive();
      // +4 for the intra-box stream-number field preceding the header.
      co_await gate_.Transmit(ref->EncodedSize() + 4);
      ++forwarded_;
      co_await out_->Send(std::move(ref));
    }
  }

  Scheduler* sched_;
  std::string name_;
  Channel<SegmentRef>* in_;
  Channel<SegmentRef>* out_;
  BandwidthGate gate_;
  uint64_t forwarded_ = 0;
  bool started_ = false;
};

}  // namespace pandora

#endif  // PANDORA_SRC_SERVER_RELAY_H_
