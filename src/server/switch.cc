#include "src/server/switch.h"

#include <algorithm>

#include "src/runtime/check.h"

namespace pandora {

Switch::Switch(Scheduler* sched, SwitchOptions options, CpuModel* cpu, ReportSink* report_sink)
    : sched_(sched),
      options_(std::move(options)),
      cpu_(cpu),
      reporter_(sched, report_sink, options_.name),
      input_(sched, options_.name + ".in"),
      command_(sched, options_.name + ".cmd") {}

DestinationId Switch::AddDestination(const std::string& name, Channel<SegmentRef>* input,
                                     Channel<bool>* ready) {
  auto destination = std::make_unique<Destination>(
      Destination{name, ReadySender(input, ready), AdaptiveDegrader(options_.degrade), 0, {}});
  destinations_.push_back(std::move(destination));
  return static_cast<DestinationId>(destinations_.size() - 1);
}

void Switch::Start(Priority priority) {
  PANDORA_CHECK(!started_);
  started_ = true;
  sched_->Spawn(Run(), options_.name, priority);
}

void Switch::OpenRoute(StreamId stream, DestinationId destination, bool incoming, bool audio,
                       Vci out_vci) {
  StreamRoute& route = table_.Open(stream, incoming, audio);
  if (out_vci != 0 &&
      std::find(route.out_vcis.begin(), route.out_vcis.end(), out_vci) == route.out_vcis.end()) {
    route.out_vcis.push_back(out_vci);
  }
  table_.AddDestination(stream, destination);
}

void Switch::CloseNetworkCopy(StreamId stream, Vci vci, DestinationId network_destination) {
  table_.RemoveVci(stream, vci);
  const StreamRoute* route = table_.Find(stream);
  if (route != nullptr && route->out_vcis.empty()) {
    CloseRoute(stream, network_destination);
  }
}

void Switch::CloseRoute(StreamId stream, DestinationId destination) {
  table_.RemoveDestination(stream, destination);
  const StreamRoute* route = table_.Find(stream);
  if (route != nullptr && route->destinations.empty()) {
    table_.Close(stream);
  }
}

void Switch::MoveRoute(StreamId stream, DestinationId from, DestinationId to) {
  table_.MoveDestination(stream, from, to);
}

void Switch::HandleCommand(const Command& command) {
  switch (command.verb) {
    case CommandVerb::kOpenRoute:
      // P6: "the tables are updated without disturbing the flows of data".
      OpenRoute(command.stream, static_cast<DestinationId>(command.arg0),
                /*incoming=*/command.arg1 != 0, /*audio=*/true);
      break;
    case CommandVerb::kCloseRoute:
      CloseRoute(command.stream, static_cast<DestinationId>(command.arg0));
      break;
    case CommandVerb::kMoveRoute:
      MoveRoute(command.stream, static_cast<DestinationId>(command.arg0),
                static_cast<DestinationId>(command.arg1));
      break;
    case CommandVerb::kReportStatus:
      reporter_.ReportNow("switch.status", ReportSeverity::kInfo,
                          "streams=" + std::to_string(table_.size()) +
                              " switched=" + std::to_string(segments_switched_) +
                              " dropped=" + std::to_string(segments_dropped_),
                          static_cast<int64_t>(segments_switched_));
      break;
    default:
      break;
  }
}

Task<void> Switch::HandleSegment(SegmentRef ref) {
  // One span per segment on the switch's own track; handling is strictly
  // sequential (Run awaits each segment), so B/E pairs nest trivially even
  // though the span crosses suspension points.
  PANDORA_TRACE_SPAN(sched_->trace(), trace_seg_site_, options_.name + ".segment");
  if (cpu_ != nullptr) {
    co_await cpu_->Consume(options_.segment_cost);
  }
  const StreamId stream = ref->stream;
  StreamRoute* route = table_.Find(stream);
  if (route == nullptr) {
    // Unrouted stream: discarded (and reported — it usually means a race
    // with teardown or a plumbing mistake).
    reporter_.Report("switch.unrouted", ReportSeverity::kWarning,
                     "segment for unknown stream " + std::to_string(stream));
    co_return;
  }
  ++route->segments;
  ++segments_switched_;

  const size_t fanout = route->destinations.size();
  for (size_t i = 0; i < fanout; ++i) {
    Destination& destination = *destinations_[static_cast<size_t>(route->destinations[i])];
    destination.sender.Poll();  // absorb any deferred READY=TRUE
    destination.degrader.MaybeRecover(sched_->now());

    const bool last = (i == fanout - 1);
    bool drop = false;
    // The degrader consults the destination's active-stream set; refresh the
    // cached copy only when routing membership actually changed.
    if (destination.active_cache_version != table_.version()) {
      destination.active_cache = table_.ActiveTowards(route->destinations[i]);
      destination.active_cache_version = table_.version();
    }
    if (!destination.sender.can_send()) {
      // Principle 5: never block on a congested destination — the split-off
      // copies continue; this destination recovers via sequence numbers.
      drop = true;
      destination.degrader.OnBufferFull(sched_->now());
      PANDORA_TRACE_INSTANT2(sched_->trace(), trace_drop_full_site_,
                             options_.name + ".drop.backpressure", "stream",
                             static_cast<int64_t>(ref->stream), "age",
                             static_cast<int64_t>(route->attrs.open_order));
    } else if (destination.degrader.ShouldDrop(route->attrs, destination.active_cache)) {
      // Principles 1-3: sustained overload sheds whole streams in
      // degradation order rather than shaving every stream equally.
      drop = true;
      if (route->attrs.incoming) {
        if (destination.sheds.incoming++ == 0) {
          destination.sheds.first_incoming = sched_->now();
        }
        if (sheds_incoming_++ == 0) {
          first_shed_incoming_ = sched_->now();
        }
      } else {
        if (destination.sheds.outgoing++ == 0) {
          destination.sheds.first_outgoing = sched_->now();
        }
        if (sheds_outgoing_++ == 0) {
          first_shed_outgoing_ = sched_->now();
        }
      }
      // Degradation decision, split by stream kind; "age" is the route's
      // open order (P3 sheds the most recently opened first).
      if (route->attrs.audio) {
        PANDORA_TRACE_INSTANT2(sched_->trace(), trace_shed_audio_site_,
                               options_.name + ".drop.degrade.audio", "stream",
                               static_cast<int64_t>(ref->stream), "age",
                               static_cast<int64_t>(route->attrs.open_order));
      } else {
        PANDORA_TRACE_INSTANT2(sched_->trace(), trace_shed_video_site_,
                               options_.name + ".drop.degrade.video", "stream",
                               static_cast<int64_t>(ref->stream), "age",
                               static_cast<int64_t>(route->attrs.open_order));
      }
    }
    if (drop) {
      ++destination.drops;
      ++route->drops;
      ++segments_dropped_;
      destination.sender.CountDrop();
      reporter_.Report("switch.dropped." + destination.name, ReportSeverity::kWarning,
                       "discarding traffic for congested output " + destination.name,
                       static_cast<int64_t>(destination.drops));
      continue;
    }
    // The common case passes the reference on; extra destinations take a
    // duplicate (reference count increment).  Hoisted to a named local:
    // GCC 12 destroys stale bitwise snapshots of owning argument
    // temporaries inside co_await expressions that suspend.
    SegmentRef to_send = last ? std::move(ref) : ref.Dup();
    co_await destination.sender.Send(std::move(to_send));
    // Re-fetch after the suspension: route points into the table, and a
    // rendezvous wait is exactly when a kCloseRoute command (or, once
    // shards run in parallel, another thread) can rewrite it.  Today Run
    // serializes commands behind this handler, so the re-fetch returns the
    // same route; under ROADMAP item 1 it is load-bearing.
    route = table_.Find(stream);
    if (route == nullptr) {
      co_return;  // stream closed mid-fanout; remaining copies are moot
    }
  }
}

Process Switch::Run() {
  SmallVec<SegmentRef, 16> batch;
  for (;;) {
    Alt alt(sched_);
    alt.OnReceive(command_);  // P4: commands pre-empt data
    alt.OnReceive(input_);
    // Deferred READY signals from destination buffers, so a deferred TRUE
    // can never wedge a buffer core against an inattentive switch.
    const int ready_base = 2;
    for (auto& destination : destinations_) {
      alt.OnReceive(destination->sender.ready_channel());
    }

    int chosen = co_await alt.Select();
    if (chosen == 0) {
      Command command = co_await command_.Receive();
      HandleCommand(command);
    } else if (chosen == 1) {
      SegmentRef ref = co_await input_.Receive();
      if (options_.batch.max_hold > 0) {
        co_await sched_->WaitFor(options_.batch.max_hold);
      }
      if (options_.batch.max_batch > 1) {
        input_.TryReceiveBatch(batch, options_.batch.max_batch - 1);
      }
      co_await HandleSegment(std::move(ref));
      for (size_t i = 0; i < batch.size(); ++i) {
        // P4 between every two segments of the burst, exactly as the
        // unbatched loop's Alt gave commands priority per segment.
        while (command_.InputReady()) {
          std::optional<Command> command = command_.TryReceive();
          if (!command.has_value()) {
            break;
          }
          HandleCommand(*command);
        }
        co_await HandleSegment(std::move(batch[i]));
      }
      batch.clear();
    } else {
      co_await destinations_[static_cast<size_t>(chosen - ready_base)]
          ->sender.ConsumeReadySignal();
    }
  }
}

}  // namespace pandora
