// The server transputer's switch (section 3.4, figures 3.3 and 3.4).
//
// All streams through a box pass the switch.  Data is copied "once into
// memory, and once out for each output device that wants the stream";
// in between, only buffer references move.  Splitting to a second
// destination duplicates the reference (incrementing the allocator's
// count); "the common case of a process passing on a descriptor to just one
// other process does not require a change in the reference count".
//
// Every destination sits behind a ready-channel decoupling buffer placed
// "downstream of the switch so that the poor performance of one output
// device does not affect streams to other output devices" (principle 5):
// if a destination's buffer is full "the switch simply omits to send it any
// more segments... until the buffer has free slots again", records the
// drops, and periodically reports while the condition persists.
//
// Sustained pressure engages the AdaptiveDegrader, which sheds streams in
// principle-1/2/3 order.  Routing commands update the stream tables without
// disturbing the flows (principles 4 and 6).
#ifndef PANDORA_SRC_SERVER_SWITCH_H_
#define PANDORA_SRC_SERVER_SWITCH_H_

#include <memory>
#include <string>
#include <vector>

#include "src/buffer/decoupling.h"
#include "src/buffer/pool.h"
#include "src/control/command.h"
#include "src/control/report.h"
#include "src/runtime/alt.h"
#include "src/runtime/resource.h"
#include "src/runtime/scheduler.h"
#include "src/server/degrade.h"
#include "src/server/stream_table.h"

namespace pandora {

struct SwitchOptions {
  std::string name = "server.switch";
  // Per-segment handling cost on the server CPU (header inspect + copy).
  Duration segment_cost = Micros(20);
  AdaptiveDegrader::Options degrade;
  // Data drain budget per Select (DESIGN.md §15): after the first segment,
  // up to max_batch - 1 more already-parked senders drain in the same
  // wakeup.  Commands still pre-empt between every two segments (P4), and
  // each segment still pays segment_cost on the CPU, so the batch adds no
  // simulated delay beyond what the unbatched switch already charged.
  // max_batch = 1 restores the one-segment-per-Select path.
  BatchOptions batch;
};

class Switch {
 public:
  Switch(Scheduler* sched, SwitchOptions options, CpuModel* cpu = nullptr,
         ReportSink* report_sink = nullptr);

  // Registers an output: a (segment input, ready) channel pair speaking the
  // fig 3.6 ready protocol — usually a ready-mode DecouplingBuffer, or the
  // network splitter.  Returns the destination id for routing commands.
  DestinationId AddDestination(const std::string& name, Channel<SegmentRef>* input,
                               Channel<bool>* ready);
  DestinationId AddDestination(const std::string& name, DecouplingBuffer* buffer) {
    return AddDestination(name, &buffer->input(), &buffer->ready());
  }

  void Start(Priority priority = Priority::kLow);

  // All input device handlers send segments here.
  Channel<SegmentRef>& input() { return input_; }
  CommandChannel& commands() { return command_; }
  StreamTable& table() { return table_; }

  // Direct (host-side) route management; the command channel drives the
  // same functions from inside the simulation.
  void OpenRoute(StreamId stream, DestinationId destination, bool incoming, bool audio,
                 Vci out_vci = 0);
  void CloseRoute(StreamId stream, DestinationId destination);
  // Overlay re-parent hook: swaps one destination for another in a single
  // table mutation, so a mid-repair segment is switched to exactly one of
  // the two parents — never both, never neither (P6).
  void MoveRoute(StreamId stream, DestinationId from, DestinationId to);
  // Removes one network copy of a split stream; the network destination
  // itself is closed only when no VCIs remain (principle 6: the other
  // copies flow on undisturbed).
  void CloseNetworkCopy(StreamId stream, Vci vci, DestinationId network_destination);

  uint64_t segments_switched() const { return segments_switched_; }
  uint64_t segments_dropped() const { return segments_dropped_; }
  // Degradation sheds split by stream direction, with the sim-time of the
  // first shed in each class.  P1 says incoming streams are sacrificed
  // before outgoing ones; the ordering is only meaningful within one
  // destination's population (each destination has its own degrader), so
  // the stats are kept per destination: wherever outgoing sheds happened
  // alongside routed incoming streams, the incoming class must have begun
  // shedding no later (modulo segment arrival interleaving).
  struct ShedStats {
    uint64_t incoming = 0;
    uint64_t outgoing = 0;
    Time first_incoming = -1;  // -1: never shed
    Time first_outgoing = -1;
  };
  const ShedStats& shed_stats_for(DestinationId id) const {
    return destinations_[static_cast<size_t>(id)]->sheds;
  }
  uint64_t sheds_incoming() const { return sheds_incoming_; }
  uint64_t sheds_outgoing() const { return sheds_outgoing_; }
  Time first_shed_incoming() const { return first_shed_incoming_; }  // -1: never
  Time first_shed_outgoing() const { return first_shed_outgoing_; }  // -1: never
  uint64_t drops_for(StreamId stream) const {
    const StreamRoute* route = table_.Find(stream);
    return route == nullptr ? 0 : route->drops;
  }
  int destination_count() const { return static_cast<int>(destinations_.size()); }
  const AdaptiveDegrader& degrader_for(DestinationId id) const {
    return destinations_[static_cast<size_t>(id)]->degrader;
  }

 private:
  struct Destination {
    std::string name;
    ReadySender sender;
    AdaptiveDegrader degrader;
    uint64_t drops = 0;
    ShedStats sheds;
    // ActiveTowards() result, rebuilt only when the stream table's routing
    // membership changes (version mismatch), not per segment.
    std::vector<StreamAttrs> active_cache;
    uint64_t active_cache_version = 0;
  };

  Process Run();
  Task<void> HandleSegment(SegmentRef ref);
  void HandleCommand(const Command& command);

  Scheduler* sched_;
  SwitchOptions options_;
  CpuModel* cpu_;
  Reporter reporter_;
  Channel<SegmentRef> input_;
  CommandChannel command_;
  StreamTable table_;
  std::vector<std::unique_ptr<Destination>> destinations_;
  uint64_t segments_switched_ = 0;
  uint64_t segments_dropped_ = 0;
  uint64_t sheds_incoming_ = 0;
  uint64_t sheds_outgoing_ = 0;
  Time first_shed_incoming_ = -1;
  Time first_shed_outgoing_ = -1;
  bool started_ = false;

  // Telemetry sites: per-segment handling span plus degradation-decision
  // instants (P1-P3 sheds split by stream kind, and P5 backpressure drops).
  TraceSiteId trace_seg_site_ = 0;
  TraceSiteId trace_drop_full_site_ = 0;
  TraceSiteId trace_shed_audio_site_ = 0;
  TraceSiteId trace_shed_video_site_ = 0;
};

}  // namespace pandora

#endif  // PANDORA_SRC_SERVER_SWITCH_H_
