#include "src/server/netio.h"

#include "src/runtime/check.h"

namespace pandora {

NetworkOutput::NetworkOutput(Scheduler* sched, NetworkOutputOptions options, StreamTable* table,
                             AtmPort* port, ReportSink* report_sink)
    : sched_(sched),
      options_(std::move(options)),
      table_(table),
      port_(port),
      reporter_(sched, report_sink, options_.name),
      input_(sched, options_.name + ".in"),
      ready_(sched, options_.name + ".ready"),
      audio_buffer_(sched,
                    {.name = options_.name + ".audio",
                     .capacity = options_.audio_buffer_capacity,
                     .use_ready_channel = true},
                    report_sink),
      video_buffer_(sched,
                    {.name = options_.name + ".video",
                     .capacity = options_.video_buffer_capacity,
                     .use_ready_channel = true},
                    report_sink),
      audio_sender_(&audio_buffer_.input(), &audio_buffer_.ready()),
      video_sender_(&video_buffer_.input(), &video_buffer_.ready()) {}

void NetworkOutput::Start() {
  PANDORA_CHECK(!started_);
  started_ = true;
  audio_buffer_.Start();
  video_buffer_.Start();
  sched_->Spawn(SplitterProc(), options_.name + ".split", Priority::kLow);
  sched_->Spawn(SenderProc(), options_.name + ".send", Priority::kHigh);
}

Process NetworkOutput::SplitterProc() {
  for (;;) {
    Alt alt(sched_);
    alt.OnReceive(input_);
    alt.OnReceive(audio_sender_.ready_channel());
    alt.OnReceive(video_sender_.ready_channel());
    int chosen = co_await alt.Select();
    if (chosen == 1) {
      co_await audio_sender_.ConsumeReadySignal();
      continue;
    }
    if (chosen == 2) {
      co_await video_sender_.ConsumeReadySignal();
      continue;
    }

    SegmentRef ref = co_await input_.Receive();
    ReadySender& sender = ref->is_audio() ? audio_sender_ : video_sender_;
    if (sender.can_send()) {
      co_await sender.Send(std::move(ref));
    } else {
      // The interface is saturated: excess video (usually) is discarded
      // here, keeping its queueing delay bounded while audio rides the
      // bigger buffer (principle 2).
      sender.CountDrop();
      reporter_.Report(ref->is_audio() ? "netout.audio_drop" : "netout.video_drop",
                       ReportSeverity::kWarning, "interface saturated; segment discarded",
                       static_cast<int64_t>(ref->stream));
    }
    // The splitter itself never fills: answer the switch immediately.
    co_await ready_.Send(true);
  }
}

Process NetworkOutput::SenderProc() {
  for (;;) {
    Alt alt(sched_);
    if (options_.audio_priority) {
      alt.OnReceive(audio_buffer_.output());  // audio strictly first (P2)
      alt.OnReceive(video_buffer_.output());
    } else {
      // Ablation: the guard order is reversed, so queued video always wins
      // the interface — the behaviour the split + priority exist to avoid.
      alt.OnReceive(video_buffer_.output());
      alt.OnReceive(audio_buffer_.output());
    }
    int raw = co_await alt.Select();
    int chosen = options_.audio_priority ? raw : 1 - raw;
    // Plain if/else rather than `cond ? co_await a : co_await b`: GCC 12
    // generates incorrect temporary cleanups for co_await inside the
    // conditional operator, double-releasing the move-only result.
    SegmentRef ref;
    if (chosen == 0) {
      ref = co_await audio_buffer_.output().Receive();
    } else {
      ref = co_await video_buffer_.output().Receive();
    }
    // One wire copy per far-end circuit (the VCI relabels the stream with
    // the id the destination box allocated).
    std::vector<Vci> vcis;
    if (const StreamRoute* route = table_->Find(ref->stream);
        route != nullptr && !route->out_vcis.empty()) {
      vcis = route->out_vcis;
    } else {
      vcis.push_back(ref->stream);
    }
    // Note: the NetTx is built in a named local before the co_await; GCC
    // 12 miscompiles move-only aggregate temporaries materialized inside
    // co_await argument expressions (the moved-from ref was destroyed as
    // if still live, double-releasing the buffer).
    for (size_t i = 0; i + 1 < vcis.size(); ++i) {
      ++sent_;
      NetTx tx;
      tx.vci = vcis[i];
      tx.segment = ref.Dup();
      co_await port_->tx().Send(std::move(tx));
    }
    ++sent_;
    NetTx tx;
    tx.vci = vcis.back();
    tx.segment = std::move(ref);
    co_await port_->tx().Send(std::move(tx));
  }
}

}  // namespace pandora
