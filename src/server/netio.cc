#include "src/server/netio.h"

#include "src/runtime/check.h"
#include "src/segment/wire.h"
#include "src/trace/trace.h"

namespace pandora {

Task<void> SendEncodedSegment(AtmPort* port, SegmentRef ref, const std::vector<Vci>& vcis,
                              uint64_t* deep_copies) {
  PANDORA_CHECK(!vcis.empty(), "wire send with no destination VCI");
  // The ONE serialization on the transmit side.  Wire-pool starvation
  // applies back pressure here, before the box's segment buffer is given
  // up; the encode reuses the recycled buffer's heap capacity.
  WireRef wire = co_await port->wire_pool().Allocate();
  EncodeSegmentInto(*ref, StreamField::kOmitted, &wire->bytes);
  ref.Reset();  // the box buffer recycles as soon as serialization completes
  if (deep_copies != nullptr) {
    ++*deep_copies;
  }
  // Note: every NetTx is built in a named local (or a heap-stable SmallVec
  // slot, in SendEncodedBatch below) before the co_await; GCC 12
  // miscompiles move-only aggregate temporaries materialized inside
  // co_await argument expressions (the moved-from ref was destroyed as
  // if still live, double-releasing the buffer).
  for (size_t i = 0; i + 1 < vcis.size(); ++i) {
    NetTx tx;
    tx.vci = vcis[i];
    tx.wire = wire.Dup();
    co_await port->tx().Send(std::move(tx));
  }
  NetTx tx;
  tx.vci = vcis.back();
  tx.wire = std::move(wire);
  co_await port->tx().Send(std::move(tx));
}

Task<void> SendEncodedBatch(AtmPort* port, SmallVec<SegmentRef, kIoBatchInline>& segments,
                            StreamTable* table, uint64_t* deep_copies, uint64_t* fanout_sent) {
  PANDORA_CHECK(!segments.empty(), "wire send with an empty batch");
  // Allocation burst: take every free wire buffer synchronously; only a
  // starved pool parks us on the allocator (and then only for the buffers
  // the burst could not cover).  Wire-pool back pressure thus still lands
  // here, before any box segment buffer is given up.
  SmallVec<WireRef, kIoBatchInline> wires;
  for (size_t i = 0; i < segments.size(); ++i) {
    std::optional<WireRef> fast = port->wire_pool().TryAllocate();
    if (fast.has_value()) {
      wires.push_back(std::move(*fast));
    } else {
      wires.push_back(co_await port->wire_pool().Allocate());
    }
  }
  // Encode pass: the ONE serialization per segment, back to back over the
  // burst; each box buffer recycles the moment its bytes are on the image.
  SmallVec<StreamId, kIoBatchInline> streams;
  for (size_t i = 0; i < segments.size(); ++i) {
    streams.push_back(segments[i]->stream);
    EncodeSegmentInto(*segments[i], StreamField::kOmitted, &wires[i]->bytes);
    segments[i].Reset();
    if (deep_copies != nullptr) {
      ++*deep_copies;
    }
  }
  segments.clear();
  // Ship pass: one NetTx per (segment, VCI), fanout sharing each encoded
  // image by Dup().  The suspension-safety note in SendEncodedSegment
  // applies here too: each NetTx lives in the SmallVec (heap-stable slots
  // within one co_await) or a named local, never in a co_await temporary.
  SmallVec<NetTx, kIoBatchInline> txs;
  for (size_t i = 0; i < streams.size(); ++i) {
    const StreamRoute* route = table != nullptr ? table->Find(streams[i]) : nullptr;
    if (route != nullptr && !route->out_vcis.empty()) {
      for (size_t v = 0; v + 1 < route->out_vcis.size(); ++v) {
        txs.push_back(NetTx{route->out_vcis[v], wires[i].Dup()});
      }
      txs.push_back(NetTx{route->out_vcis.back(), std::move(wires[i])});
      if (fanout_sent != nullptr) {
        *fanout_sent += route->out_vcis.size();
      }
    } else {
      txs.push_back(NetTx{streams[i], std::move(wires[i])});
      if (fanout_sent != nullptr) {
        ++*fanout_sent;
      }
    }
  }
  wires.clear();
  while (!txs.empty()) {
    // A parked tx receiver takes what it can without a suspension; the rest
    // go one at a time through the rendezvous (the interface gate meters
    // them out in simulated time anyway).
    if (port->tx().TrySendBatch(txs) > 0) {
      continue;
    }
    NetTx tx = std::move(txs[0]);
    txs.pop_front_n(1);
    co_await port->tx().Send(std::move(tx));
  }
}

NetworkOutput::NetworkOutput(Scheduler* sched, NetworkOutputOptions options, StreamTable* table,
                             AtmPort* port, ReportSink* report_sink, uint64_t* deep_copies)
    : sched_(sched),
      options_(std::move(options)),
      table_(table),
      port_(port),
      reporter_(sched, report_sink, options_.name),
      input_(sched, options_.name + ".in"),
      ready_(sched, options_.name + ".ready"),
      audio_buffer_(sched,
                    {.name = options_.name + ".audio",
                     .capacity = options_.audio_buffer_capacity,
                     .use_ready_channel = true},
                    report_sink),
      video_buffer_(sched,
                    {.name = options_.name + ".video",
                     .capacity = options_.video_buffer_capacity,
                     .use_ready_channel = true},
                    report_sink),
      audio_sender_(&audio_buffer_.input(), &audio_buffer_.ready()),
      video_sender_(&video_buffer_.input(), &video_buffer_.ready()),
      deep_copies_(deep_copies) {}

void NetworkOutput::Start() {
  PANDORA_CHECK(!started_);
  started_ = true;
  audio_buffer_.Start();
  video_buffer_.Start();
  sched_->Spawn(SplitterProc(), options_.name + ".split", Priority::kLow);
  sched_->Spawn(SenderProc(), options_.name + ".send", Priority::kHigh);
}

Process NetworkOutput::SplitterProc() {
  for (;;) {
    Alt alt(sched_);
    alt.OnReceive(input_);
    alt.OnReceive(audio_sender_.ready_channel());
    alt.OnReceive(video_sender_.ready_channel());
    int chosen = co_await alt.Select();
    if (chosen == 1) {
      co_await audio_sender_.ConsumeReadySignal();
      continue;
    }
    if (chosen == 2) {
      co_await video_sender_.ConsumeReadySignal();
      continue;
    }

    SegmentRef ref = co_await input_.Receive();
    ReadySender& sender = ref->is_audio() ? audio_sender_ : video_sender_;
    if (sender.can_send()) {
      co_await sender.Send(std::move(ref));
    } else {
      // The interface is saturated: excess video (usually) is discarded
      // here, keeping its queueing delay bounded while audio rides the
      // bigger buffer (principle 2).
      sender.CountDrop();
      reporter_.Report(ref->is_audio() ? "netout.audio_drop" : "netout.video_drop",
                       ReportSeverity::kWarning, "interface saturated; segment discarded",
                       static_cast<int64_t>(ref->stream));
    }
    // The splitter itself never fills: answer the switch immediately.
    co_await ready_.Send(true);
  }
}

Process NetworkOutput::SenderProc() {
  SmallVec<SegmentRef, kIoBatchInline> batch;
  for (;;) {
    Alt alt(sched_);
    if (options_.audio_priority) {
      alt.OnReceive(audio_buffer_.output());  // audio strictly first (P2)
      alt.OnReceive(video_buffer_.output());
    } else {
      // Ablation: the guard order is reversed, so queued video always wins
      // the interface — the behaviour the split + priority exist to avoid.
      alt.OnReceive(video_buffer_.output());
      alt.OnReceive(audio_buffer_.output());
    }
    int raw = co_await alt.Select();
    int chosen = options_.audio_priority ? raw : 1 - raw;
    // Plain if/else rather than `cond ? co_await a : co_await b`: GCC 12
    // generates incorrect temporary cleanups for co_await inside the
    // conditional operator, double-releasing the move-only result.  The
    // batched drain below inherits the same rule: every segment rides a
    // heap-stable SmallVec slot, never a co_await temporary.
    DecouplingBuffer* source;
    SegmentRef ref;
    if (chosen == 0) {
      ref = co_await audio_buffer_.output().Receive();
      source = &audio_buffer_;
    } else {
      ref = co_await video_buffer_.output().Receive();
      source = &video_buffer_;
    }
    batch.push_back(std::move(ref));
    if (options_.batch.max_hold > 0) {
      // Hold the batch open for a bounded slice of simulated time so more
      // of the same class accumulates; the boundary is a pure function of
      // simulated time (deterministic under replay and sharding).
      co_await sched_->WaitFor(options_.batch.max_hold);
    }
    if (options_.batch.max_batch > 1) {
      // FIFO-safe drain of the same class: first the segment (if any) the
      // buffer's internal sender already holds parked on output(), then a
      // steal from the queue behind it.  One wire-pool allocation burst
      // then serves the whole cycle (SendEncodedBatch).
      int room = options_.batch.max_batch - static_cast<int>(batch.size());
      room -= source->output().TryReceiveBatch(batch, room);
      source->TryPopBatch(batch, room);
    }
    co_await SendEncodedBatch(port_, batch, table_, deep_copies_, &sent_);
    batch.clear();
    if (deep_copies_ != nullptr) {
      PANDORA_TRACE_COUNTER(sched_->trace(), trace_copies_, options_.name + ".deep_copies",
                            static_cast<int64_t>(*deep_copies_));
    }
  }
}

Process NetworkInput::Run() {
  SmallVec<NetRx, kIoBatchInline> batch;
  for (;;) {
    // Block for the first wire image, then drain whatever else is already
    // parked on the rx channel (in-flight deliveries pile up there) into
    // the same wakeup, bounded by the batch budget (DESIGN.md §15).
    batch.push_back(co_await port_->rx().Receive());
    if (options_.batch.max_hold > 0) {
      co_await sched_->WaitFor(options_.batch.max_hold);
    }
    if (options_.batch.max_batch > 1) {
      port_->rx().TryReceiveBatch(batch, options_.batch.max_batch - 1);
    }
    for (size_t i = 0; i < batch.size(); ++i) {
      NetRx in = std::move(batch[i]);
      // The ONE decode on the whole path (DESIGN.md §9), done BEFORE taking
      // a buffer so malformed wire images cannot consume this box's pool.
      DecodeResult decoded = DecodeSegment(in.wire->bytes, StreamField::kOmitted, in.vci);
      in.wire.Reset();  // encoded bytes go back to the source port's pool
      if (!decoded.ok) {
        // Bit corruption or truncation in flight: the self-describing header
        // let us reject it here.  Count, report, drop — the sequence gap is
        // absorbed downstream by the clawback buffer.
        ++decode_failures_;
        reporter_.Report("netin.decode_failure", ReportSeverity::kWarning, decoded.error,
                         static_cast<int64_t>(in.vci));
        PANDORA_TRACE_COUNTER(sched_->trace(), trace_decode_fail_,
                              options_.name + ".decode_failures",
                              static_cast<int64_t>(decode_failures_));
        continue;
      }
      // Copy into this box's buffer memory ("copy once into memory"); pool
      // starvation applies back pressure all the way into the network
      // delivery path.  The free-list fast path skips the allocator
      // coroutine entirely; only a starved pool parks us.
      SegmentRef ref;
      if (std::optional<SegmentRef> fast = pool_->TryAllocate(); fast.has_value()) {
        ref = std::move(*fast);
      } else {
        ref = co_await pool_->Allocate();
      }
      *ref = std::move(decoded.segment);
      ++received_;
      if (deep_copies_ != nullptr) {
        ++*deep_copies_;
        PANDORA_TRACE_COUNTER(sched_->trace(), trace_copies_, options_.name + ".deep_copies",
                              static_cast<int64_t>(*deep_copies_));
      }
      co_await to_switch_->Send(std::move(ref));
    }
    batch.clear();
  }
}

}  // namespace pandora
