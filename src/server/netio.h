// Network input/output device handlers (sections 3.4, 3.7.1, fig 3.7).
//
// Output: "The first limit that tends to be exceeded in normal operation is
// the bandwidth of the interface to the network...  We limit the size of
// this buffer so that the video delays do not become aggravating to the
// user, and buffer the audio separately so that it can be given priority
// (principle 2)."  NetworkOutput is the splitter of fig 3.7: one switch
// destination that classifies segments into a generously-sized audio
// decoupling buffer and a deliberately small video one; its sender drains
// audio strictly before video into the port's (non-interleaving) interface.
//
// Input: receives segments off the wire (already re-labelled with this
// box's stream numbers via the VCI), copies them into this box's buffer
// pool — the "copy once into memory" — and hands references to the switch.
#ifndef PANDORA_SRC_SERVER_NETIO_H_
#define PANDORA_SRC_SERVER_NETIO_H_

#include <string>

#include "src/buffer/decoupling.h"
#include "src/buffer/pool.h"
#include "src/control/report.h"
#include "src/net/atm.h"
#include "src/runtime/alt.h"
#include "src/runtime/check.h"
#include "src/runtime/scheduler.h"
#include "src/server/stream_table.h"

namespace pandora {

struct NetworkOutputOptions {
  std::string name = "server.netout";
  size_t audio_buffer_capacity = 64;  // audio rarely queues long
  size_t video_buffer_capacity = 6;   // small: bound the video delay
  // Principle 2 at the interface; false only for ablation studies.
  bool audio_priority = true;
};

class NetworkOutput {
 public:
  NetworkOutput(Scheduler* sched, NetworkOutputOptions options, StreamTable* table, AtmPort* port,
                ReportSink* report_sink = nullptr);

  void Start();

  // The switch-facing destination endpoint (ready protocol).
  Channel<SegmentRef>& input() { return input_; }
  Channel<bool>& ready() { return ready_; }

  uint64_t sent() const { return sent_; }
  uint64_t audio_drops() const { return audio_sender_.drops(); }
  uint64_t video_drops() const { return video_sender_.drops(); }
  // Per-class accepted counts, so chaos tests can compare drop *fractions*
  // (P2: the audio fraction must not exceed the video fraction).
  uint64_t audio_sent() const { return audio_sender_.sent(); }
  uint64_t video_sent() const { return video_sender_.sent(); }
  DecouplingBuffer& audio_buffer() { return audio_buffer_; }
  DecouplingBuffer& video_buffer() { return video_buffer_; }

 private:
  Process SplitterProc();
  Process SenderProc();

  Scheduler* sched_;
  NetworkOutputOptions options_;
  StreamTable* table_;
  AtmPort* port_;
  Reporter reporter_;

  Channel<SegmentRef> input_;
  Channel<bool> ready_;
  DecouplingBuffer audio_buffer_;
  DecouplingBuffer video_buffer_;
  ReadySender audio_sender_;
  ReadySender video_sender_;
  uint64_t sent_ = 0;
  bool started_ = false;
};

struct NetworkInputOptions {
  std::string name = "server.netin";
};

class NetworkInput {
 public:
  NetworkInput(Scheduler* sched, NetworkInputOptions options, AtmPort* port, BufferPool* pool,
               Channel<SegmentRef>* to_switch)
      : sched_(sched), options_(std::move(options)), port_(port), pool_(pool),
        to_switch_(to_switch) {}

  void Start(Priority priority = Priority::kLow) {
    PANDORA_CHECK(!started_);
    started_ = true;
    sched_->Spawn(Run(), options_.name, priority);
  }

  uint64_t received() const { return received_; }

 private:
  Process Run() {
    for (;;) {
      Segment segment = co_await port_->rx().Receive();
      // Copy into this box's buffer memory; pool starvation applies back
      // pressure all the way into the network delivery path.
      SegmentRef ref = co_await pool_->Allocate();
      *ref = std::move(segment);
      ++received_;
      co_await to_switch_->Send(std::move(ref));
    }
  }

  Scheduler* sched_;
  NetworkInputOptions options_;
  AtmPort* port_;
  BufferPool* pool_;
  Channel<SegmentRef>* to_switch_;
  uint64_t received_ = 0;
  bool started_ = false;
};

}  // namespace pandora

#endif  // PANDORA_SRC_SERVER_NETIO_H_
