// Network input/output device handlers (sections 3.4, 3.7.1, fig 3.7).
//
// Output: "The first limit that tends to be exceeded in normal operation is
// the bandwidth of the interface to the network...  We limit the size of
// this buffer so that the video delays do not become aggravating to the
// user, and buffer the audio separately so that it can be given priority
// (principle 2)."  NetworkOutput is the splitter of fig 3.7: one switch
// destination that classifies segments into a generously-sized audio
// decoupling buffer and a deliberately small video one; its sender drains
// audio strictly before video into the port's (non-interleaving) interface.
//
// The sender is also where the ONE wire encode happens: the segment is
// serialized into a refcounted WireBuffer from the port's pool, the box's
// segment buffer is recycled, and multi-destination fanout shares the same
// encoded bytes by Dup() — the VCI carries the stream id, so the image is
// identical for every destination (DESIGN.md §9).
//
// Input: receives encoded segments off the wire, performs the ONE decode
// (validating the self-describing header, fig 3.1), copies the result into
// this box's buffer pool — the "copy once into memory" — and hands
// references to the switch.  Malformed wire images (bit corruption,
// truncation) are counted and reported, never forwarded; the sequence gap
// they leave is absorbed downstream by the clawback buffer.
#ifndef PANDORA_SRC_SERVER_NETIO_H_
#define PANDORA_SRC_SERVER_NETIO_H_

#include <string>
#include <vector>

#include "src/buffer/small_vec.h"
#include "src/buffer/decoupling.h"
#include "src/buffer/pool.h"
#include "src/control/report.h"
#include "src/net/atm.h"
#include "src/runtime/alt.h"
#include "src/runtime/check.h"
#include "src/runtime/scheduler.h"
#include "src/server/stream_table.h"

namespace pandora {

// Encodes `ref` exactly once into `port`'s wire pool and queues one NetTx
// per VCI; every destination past the first shares the identical encoded
// bytes via Dup() (the stream field is omitted — the VCI relabels it).
// The box's segment buffer is released as soon as serialization completes,
// and `*deep_copies` (when non-null) counts the single serialization pass.
// `vcis` must be non-empty and outlive the await (callers pass a local).
Task<void> SendEncodedSegment(AtmPort* port, SegmentRef ref, const std::vector<Vci>& vcis,
                              uint64_t* deep_copies);

// Inline capacity of the data-plane batch vectors: sized to the default
// BatchOptions::max_batch so a full burst stays off the heap.
inline constexpr std::size_t kIoBatchInline = 16;

// Batch form of SendEncodedSegment (DESIGN.md §15): one wire-pool
// allocation burst covers the whole egress cycle, then one encode pass,
// then the NetTx fanout ships — batched to any parked tx receiver first,
// element-at-a-time (time-gated by the interface) for the rest.  Routes are
// resolved per segment from `table` exactly as the per-element sender does
// (fallback: the VCI is the stream id); `*fanout_sent` (when non-null)
// accumulates one count per (segment, VCI) shipped.  Consumes `segments`.
Task<void> SendEncodedBatch(AtmPort* port, SmallVec<SegmentRef, kIoBatchInline>& segments,
                            StreamTable* table, uint64_t* deep_copies, uint64_t* fanout_sent);

struct NetworkOutputOptions {
  std::string name = "server.netout";
  size_t audio_buffer_capacity = 64;  // audio rarely queues long
  size_t video_buffer_capacity = 6;   // small: bound the video delay
  // Principle 2 at the interface; false only for ablation studies.
  bool audio_priority = true;
  // Egress drain budget per sender wakeup (DESIGN.md §15).  max_batch = 1
  // restores the legacy one-segment-per-Select path bit for bit; the added
  // delay a batch can impose on a queued peer class is bounded by
  // max_batch × wire time, which the bench_batch sweep gates against P7.
  BatchOptions batch;
};

class NetworkOutput {
 public:
  NetworkOutput(Scheduler* sched, NetworkOutputOptions options, StreamTable* table, AtmPort* port,
                ReportSink* report_sink = nullptr, uint64_t* deep_copies = nullptr);

  void Start();

  // The switch-facing destination endpoint (ready protocol).
  Channel<SegmentRef>& input() { return input_; }
  Channel<bool>& ready() { return ready_; }

  uint64_t sent() const { return sent_; }
  uint64_t audio_drops() const { return audio_sender_.drops(); }
  uint64_t video_drops() const { return video_sender_.drops(); }
  // Per-class accepted counts, so chaos tests can compare drop *fractions*
  // (P2: the audio fraction must not exceed the video fraction).
  uint64_t audio_sent() const { return audio_sender_.sent(); }
  uint64_t video_sent() const { return video_sender_.sent(); }
  DecouplingBuffer& audio_buffer() { return audio_buffer_; }
  DecouplingBuffer& video_buffer() { return video_buffer_; }

 private:
  Process SplitterProc();
  Process SenderProc();

  Scheduler* sched_;
  NetworkOutputOptions options_;
  StreamTable* table_;
  AtmPort* port_;
  Reporter reporter_;

  Channel<SegmentRef> input_;
  Channel<bool> ready_;
  DecouplingBuffer audio_buffer_;
  DecouplingBuffer video_buffer_;
  ReadySender audio_sender_;
  ReadySender video_sender_;
  uint64_t sent_ = 0;
  // Per-box deep-copy counter (shared with NetworkInput): each wire encode
  // is one of the box's two sanctioned copies per delivered segment.
  uint64_t* deep_copies_ = nullptr;
  TraceSiteId trace_copies_ = 0;
  bool started_ = false;
};

struct NetworkInputOptions {
  std::string name = "server.netin";
  // Ingress drain budget per wakeup: after the blocking receive of the
  // first wire image, up to max_batch - 1 further images already parked on
  // the port's rx channel decode in the same wakeup.  max_hold > 0 waits
  // that much simulated time after the first image before draining —
  // boundaries stay a pure function of simulated time (DESIGN.md §15).
  BatchOptions batch;
};

class NetworkInput {
 public:
  NetworkInput(Scheduler* sched, NetworkInputOptions options, AtmPort* port, BufferPool* pool,
               Channel<SegmentRef>* to_switch, ReportSink* report_sink = nullptr,
               uint64_t* deep_copies = nullptr)
      : sched_(sched),
        options_(std::move(options)),
        port_(port),
        pool_(pool),
        to_switch_(to_switch),
        reporter_(sched, report_sink, options_.name),
        deep_copies_(deep_copies) {}

  void Start(Priority priority = Priority::kLow) {
    PANDORA_CHECK(!started_);
    started_ = true;
    sched_->Spawn(Run(), options_.name, priority);
  }

  uint64_t received() const { return received_; }
  // Wire images that failed DecodeSegment validation (counted, reported,
  // and dropped; clawback recovery rides the sequence numbers past them).
  uint64_t decode_failures() const { return decode_failures_; }

 private:
  Process Run();

  Scheduler* sched_;
  NetworkInputOptions options_;
  AtmPort* port_;
  BufferPool* pool_;
  Channel<SegmentRef>* to_switch_;
  Reporter reporter_;
  uint64_t* deep_copies_ = nullptr;
  uint64_t received_ = 0;
  uint64_t decode_failures_ = 0;
  TraceSiteId trace_copies_ = 0;
  TraceSiteId trace_decode_fail_ = 0;
  bool started_ = false;
};

}  // namespace pandora

#endif  // PANDORA_SRC_SERVER_NETIO_H_
