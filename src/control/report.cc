#include "src/control/report.h"

#include <sstream>

namespace pandora {
namespace {

const char* SeverityName(ReportSeverity severity) {
  switch (severity) {
    case ReportSeverity::kInfo:
      return "INFO";
    case ReportSeverity::kWarning:
      return "WARN";
    case ReportSeverity::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

std::string ReportCollector::Format() const {
  std::ostringstream out;
  for (const Report& report : log_) {
    out << "[" << ToMillis(report.when) << "ms] " << SeverityName(report.severity) << " "
        << report.source << " " << report.kind << ": " << report.text;
    if (report.value != 0) {
      out << " (value=" << report.value << ")";
    }
    if (report.suppressed > 0) {
      out << " (+" << report.suppressed << " suppressed)";
    }
    out << "\n";
  }
  return out.str();
}

void Reporter::Report(const std::string& kind, ReportSeverity severity, std::string text,
                      int64_t value) {
  if (sink_ == nullptr) {
    return;
  }
  KindState& state = kinds_[kind];
  Time now = sched_->now();
  if (state.last_emit >= 0 && now - state.last_emit < min_period_) {
    ++state.suppressed_since;
    ++suppressed_total_;
    return;
  }
  pandora::Report report;
  report.when = now;
  report.source = source_;
  report.kind = kind;
  report.severity = severity;
  report.text = std::move(text);
  report.value = value;
  report.suppressed = state.suppressed_since;
  state.suppressed_since = 0;
  state.last_emit = now;
  ++emitted_;
  sink_->Submit(std::move(report));
}

void Reporter::ReportNow(const std::string& kind, ReportSeverity severity, std::string text,
                         int64_t value) {
  if (sink_ == nullptr) {
    return;
  }
  pandora::Report report;
  report.when = sched_->now();
  report.source = source_;
  report.kind = kind;
  report.severity = severity;
  report.text = std::move(text);
  report.value = value;
  ++emitted_;
  sink_->Submit(std::move(report));
}

}  // namespace pandora
