// Commands: the configuration half of the Pandora control plane.
//
// "Commands are used to set up the operations performed by each process...
// usually with reference to a stream number...  To set data flowing, it is
// necessary to allocate a new stream number, inform each process from the
// destination back to the source what is to be done to that stream, and
// then command the source to begin producing data." (section 1.1).
//
// Principle 4 demands that stream processing can never lock commands out;
// every process therefore lists its command channel as the FIRST guard of
// its alternation, and "a command will be received as soon as the process
// has finished dealing with any current segment" (section 3.4).
#ifndef PANDORA_SRC_CONTROL_COMMAND_H_
#define PANDORA_SRC_CONTROL_COMMAND_H_

#include <cstdint>
#include <string>

#include "src/runtime/channel.h"
#include "src/segment/constants.h"

namespace pandora {

enum class CommandVerb {
  // Generic:
  kReportStatus,  // answer with a report on the report channel
  kStop,          // stop handling the given stream

  // Decoupling buffers:
  kResizeBuffer,  // arg0 = new capacity (slots); adjusts without data loss

  // Switch / stream tables:
  kOpenRoute,     // arg0 = destination port id; adds a destination (P6)
  kCloseRoute,    // arg0 = destination port id; removes a destination (P6)
  kMoveRoute,     // arg0 = old destination, arg1 = new; atomic re-parent
                  // (overlay tree repair: no route-less window, P6)
  kSetStreamAge,  // arg0 = open order stamp (for principle 3 accounting)

  // Sources:
  kStartStream,    // begin producing data
  kSetBlocksPerSegment,  // arg0 = audio blocks per outgoing segment (1..12)
  kSetFrameRate,   // arg0/arg1 = frame rate fraction of 25Hz

  // Audio output:
  kSetMuting,      // arg0 = enable, arg1 = threshold
};

struct Command {
  CommandVerb verb = CommandVerb::kReportStatus;
  StreamId stream = kInvalidStream;
  int64_t arg0 = 0;
  int64_t arg1 = 0;
};

using CommandChannel = Channel<Command>;

}  // namespace pandora

#endif  // PANDORA_SRC_CONTROL_COMMAND_H_
