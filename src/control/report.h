// Reports: the observability half of the Pandora control plane.
//
// "Reports are collected from all main processes, and multiplexed together.
// They are usually in the form of text messages generated when Pandora is
// overloaded, when some error has been detected, when a command has
// requested some information, or on occasion just to say that everything is
// all right.  Reports are sent to the host computer for display or logging."
// (section 1.1).  Section 3.8 adds the throttling rule: processes send
// messages "as soon as possible subject to a minimum period between reports
// for any particular sort of error".
#ifndef PANDORA_SRC_CONTROL_REPORT_H_
#define PANDORA_SRC_CONTROL_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/runtime/scheduler.h"
#include "src/runtime/time.h"
#include "src/trace/trace.h"

namespace pandora {

enum class ReportSeverity {
  kInfo,
  kWarning,
  kError,
};

struct Report {
  Time when = 0;
  std::string source;  // reporting process, e.g. "boxA.server.switch"
  std::string kind;    // stable event key, e.g. "decoupling.full"
  ReportSeverity severity = ReportSeverity::kInfo;
  std::string text;
  int64_t value = 0;       // optional numeric payload (e.g. drop count)
  uint64_t suppressed = 0;  // reports of this kind swallowed by rate limiting
};

// Destination for reports (the host-side multiplexer implements this).
class ReportSink {
 public:
  virtual ~ReportSink() = default;
  virtual void Submit(Report report) = 0;
};

// Host-side collector: multiplexes reports from every process into one log,
// as the host computer does in the paper.
class ReportCollector : public ReportSink {
 public:
  void Submit(Report report) override {
    counts_by_kind_[report.kind] += 1 + report.suppressed;
    // Mirror the control plane onto the trace timeline as instant events
    // ("<source>.<kind>" tracks), so reports and telemetry share one view.
    // Reports are rate-limited upstream, so the dynamic-name intern is cold.
    PANDORA_TRACE_INSTANT_DYN(trace_, report.source + "." + report.kind, report.value,
                              static_cast<int64_t>(report.severity));
    log_.push_back(std::move(report));
  }

  const std::vector<Report>& log() const { return log_; }
  uint64_t CountOf(const std::string& kind) const {
    auto it = counts_by_kind_.find(kind);
    return it == counts_by_kind_.end() ? 0 : it->second;
  }
  size_t size() const { return log_.size(); }
  void Clear() {
    log_.clear();
    counts_by_kind_.clear();
  }

  // Renders the log as the host would write it to a file.
  std::string Format() const;

  // Mirrors every subsequent report into `trace` (null to stop mirroring).
  void BindTrace(TraceRecorder* trace) { trace_ = trace; }

 private:
  std::vector<Report> log_;
  std::map<std::string, uint64_t> counts_by_kind_;
  TraceRecorder* trace_ = nullptr;
};

// Per-process report front-end implementing the minimum-period rule.  The
// first report of a kind goes out immediately; further reports of the same
// kind within `min_period` are counted and folded into the next emission.
class Reporter {
 public:
  Reporter(Scheduler* sched, ReportSink* sink, std::string source,
           Duration min_period = Seconds(1))
      : sched_(sched), sink_(sink), source_(std::move(source)), min_period_(min_period) {}

  void Report(const std::string& kind, ReportSeverity severity, std::string text,
              int64_t value = 0);

  // Information requests bypass rate limiting (they answer a command).
  void ReportNow(const std::string& kind, ReportSeverity severity, std::string text,
                 int64_t value = 0);

  uint64_t emitted() const { return emitted_; }
  uint64_t suppressed_total() const { return suppressed_total_; }
  const std::string& source() const { return source_; }
  Scheduler* scheduler() const { return sched_; }

 private:
  struct KindState {
    Time last_emit = -1;
    uint64_t suppressed_since = 0;
  };

  Scheduler* sched_;
  ReportSink* sink_;
  std::string source_;
  Duration min_period_;
  std::map<std::string, KindState> kinds_;
  uint64_t emitted_ = 0;
  uint64_t suppressed_total_ = 0;
};

}  // namespace pandora

#endif  // PANDORA_SRC_CONTROL_REPORT_H_
