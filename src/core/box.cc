#include "src/core/box.h"

#include "src/runtime/check.h"

namespace pandora {
namespace {

// Spawns a throwaway process that performs one channel send — how the host
// injects commands into a running box.
template <typename T>
void SendAsync(Scheduler* sched, Channel<T>* channel, T value, const std::string& name) {
  auto sender = [](Channel<T>* channel, T value) -> Process {
    co_await channel->Send(std::move(value));
  };
  sched->Spawn(sender(channel, std::move(value)), name, Priority::kHigh);
}

}  // namespace

PandoraBox::PandoraBox(Scheduler* sched, AtmNetwork* net, Options options,
                       ReportSink* report_sink)
    : sched_(sched),
      net_(net),
      options_(std::move(options)),
      report_sink_(report_sink),
      // --- server board ---
      server_cpu_(sched, options_.name + ".server.cpu"),
      pool_(sched, options_.name + ".pool", options_.pool_buffers, report_sink),
      switch_(sched, SwitchOptions{.name = options_.name + ".switch"}, &server_cpu_, report_sink),
      to_audio_buf_(sched,
                    {.name = options_.name + ".buf.audio_out",
                     .capacity = options_.audio_out_buffer,
                     .use_ready_channel = true},
                    report_sink),
      to_display_buf_(sched,
                      {.name = options_.name + ".buf.display",
                       .capacity = options_.display_buffer,
                       .use_ready_channel = true},
                      report_sink),
      port_(net->AddPort(options_.name + ".port", options_.network_egress_bps)),
      net_out_(sched,
               [&] {
                 NetworkOutputOptions o = options_.netout;
                 o.name = options_.name + ".netout";
                 return o;
               }(),
               &switch_.table(), port_, report_sink),
      net_in_(sched, {.name = options_.name + ".netin"}, port_, &pool_, &switch_.input()),
      // --- audio board ---
      audio_cpu_(sched, options_.name + ".audio.cpu"),
      mic_chan_(sched, options_.name + ".mic"),
      muting_(MutingConfig{.enabled = options_.muting_enabled}),
      codec_in_(sched,
                {.name = options_.name + ".codec.in", .clock_drift = options_.audio_clock_drift},
                mic_source(), &mic_chan_),
      audio_up_(sched, options_.name + ".audio.up"),
      sender_(sched,
              {.name = options_.name + ".audio.sender",
               .stream = options_.mic_stream,
               .start_immediately = false,
               .costs = options_.costs},
              &mic_chan_, &pool_, &audio_up_, &audio_cpu_,
              options_.muting_enabled ? &muting_ : nullptr, report_sink),
      audio_up_link_(sched, options_.name + ".link.audio_up", &audio_up_, &switch_.input()),
      audio_down_(sched, options_.name + ".audio.down"),
      audio_down_link_(sched, options_.name + ".link.audio_down", &to_audio_buf_.output(),
                       &audio_down_),
      bank_(options_.clawback, Seconds(4),
            nullptr),  // reporter optional; clawback reports via receiver
      receiver_(sched, {.name = options_.name + ".audio.receiver", .costs = options_.costs},
                &audio_down_, &bank_, &audio_cpu_, report_sink),
      codec_out_(sched, {.name = options_.name + ".codec.out",
                         .record_samples = options_.record_played_audio}),
      mixer_(sched,
             AudioMixerOptions{.name = options_.name + ".audio.mixer",
                               .clock_drift = options_.audio_clock_drift,
                               .costs = options_.costs},
             &bank_, &audio_cpu_, &codec_out_, options_.muting_enabled ? &muting_ : nullptr),
      // --- video boards ---
      video_up_(sched, options_.name + ".video.up"),
      video_up_link_(sched, options_.name + ".fifo.video_up", &video_up_, &switch_.input(),
                     kVideoFifoBps),
      video_down_(sched, options_.name + ".video.down"),
      video_down_link_(sched, options_.name + ".fifo.video_down", &to_display_buf_.output(),
                       &video_down_, kVideoFifoBps),
      mic_stream_(options_.mic_stream) {
  // The bank has no Scheduler of its own; hand it the box's recorder so
  // clawback occupancy/drops appear on "<box>.clawback.*" tracks.
  bank_.BindTrace(sched->trace(), options_.name + ".clawback");
  dest_audio_out_ = switch_.AddDestination("audio_out", &to_audio_buf_);
  dest_display_ = switch_.AddDestination("display", &to_display_buf_);
  dest_network_ = switch_.AddDestination("network", &net_out_.input(), &net_out_.ready());

  if (options_.with_video) {
    pattern_ = std::make_unique<MovingBarPattern>(options_.video_width);
    framestore_ = std::make_unique<FrameStore>(sched, pattern_.get(), options_.video_width,
                                               options_.video_height);
    display_ = std::make_unique<VideoDisplay>(
        sched,
        VideoDisplayOptions{.name = options_.name + ".display",
                            .width = options_.video_width,
                            .height = options_.video_height},
        &video_down_, report_sink);
  }
  if (options_.with_repository) {
    RepositoryOptions repo = options_.repository;
    repo.name = options_.name + ".repo";
    repository_ = std::make_unique<Repository>(sched, repo, report_sink);
    dest_repository_ = switch_.AddDestination("repository", &repository_->input(),
                                              &repository_->ready());
  }
}

SampleSource* PandoraBox::mic_source() {
  if (options_.custom_mic != nullptr) {
    return options_.custom_mic;
  }
  switch (options_.mic) {
    case MicKind::kSine:
      owned_mic_ = std::make_unique<SineSource>(options_.mic_frequency, options_.mic_amplitude);
      break;
    case MicKind::kSpeech:
      owned_mic_ = std::make_unique<SpeechLikeSource>(options_.mic_amplitude);
      break;
    case MicKind::kSilence:
      owned_mic_ = std::make_unique<SilenceSource>();
      break;
  }
  return owned_mic_.get();
}

void PandoraBox::Start() {
  PANDORA_CHECK(!started_);
  started_ = true;
  switch_.Start();
  to_audio_buf_.Start();
  to_display_buf_.Start();
  net_out_.Start();
  net_in_.Start();

  codec_in_.Start();
  sender_.Start();
  audio_up_link_.Start();
  audio_down_link_.Start();
  receiver_.Start();
  codec_out_.Start();
  mixer_.Start();

  if (options_.with_video) {
    video_up_link_.Start();
    video_down_link_.Start();
    display_->Start();
  }
  if (repository_ != nullptr) {
    repository_->Start();
  }
}

void PandoraBox::EnsureMicProducing() {
  if (mic_producing_) {
    return;
  }
  mic_producing_ = true;
  SendAsync(sched_, &sender_.commands(), Command{CommandVerb::kStartStream, mic_stream_, 0, 0},
            options_.name + ".host.startmic");
}

StreamId PandoraBox::AddCameraStream(StreamId stream, const Rect& rect, int rate_numer,
                                     int rate_denom, int segments_per_frame, LineCoding coding) {
  PANDORA_CHECK(options_.with_video);
  VideoCaptureOptions capture_options;
  capture_options.name = options_.name + ".capture." + std::to_string(stream);
  capture_options.stream = stream;
  capture_options.rect = rect;
  capture_options.rate_numer = rate_numer;
  capture_options.rate_denom = rate_denom;
  capture_options.segments_per_frame = segments_per_frame;
  capture_options.coding = coding;
  captures_.push_back(std::make_unique<VideoCapture>(sched_, capture_options, framestore_.get(),
                                                     &pool_, &video_up_, &server_cpu_,
                                                     report_sink_));
  captures_.back()->Start();
  return stream;
}

}  // namespace pandora
