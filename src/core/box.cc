#include "src/core/box.h"

#include "src/runtime/check.h"

namespace pandora {
namespace {

// Spawns a throwaway process that performs one channel send — how the host
// injects commands into a running box.
template <typename T>
void SendAsync(Scheduler* sched, Channel<T>* channel, T value, const std::string& name) {
  auto sender = [](Channel<T>* channel, T value) -> Process {
    co_await channel->Send(std::move(value));
  };
  sched->Spawn(sender(channel, std::move(value)), name, Priority::kHigh);
}

}  // namespace

PandoraBox::Boards::Boards(Scheduler* sched, AtmNetwork* net, AtmPort* port,
                           const Options& options, SampleSource* mic, ReportSink* report_sink)
    :  // --- server board ---
      server_cpu_(sched, options.name + ".server.cpu"),
      pool_(sched, options.name + ".pool", options.pool_buffers, report_sink),
      switch_(sched, SwitchOptions{.name = options.name + ".switch", .batch = options.batch},
              &server_cpu_, report_sink),
      to_audio_buf_(sched,
                    {.name = options.name + ".buf.audio_out",
                     .capacity = options.audio_out_buffer,
                     .use_ready_channel = true},
                    report_sink),
      to_display_buf_(sched,
                      {.name = options.name + ".buf.display",
                       .capacity = options.display_buffer,
                       .use_ready_channel = true},
                      report_sink),
      net_out_(sched,
               [&] {
                 NetworkOutputOptions o = options.netout;
                 o.name = options.name + ".netout";
                 o.batch = options.batch;  // the box-level knob wins
                 return o;
               }(),
               &switch_.table(), port, report_sink, &deep_copies_),
      net_in_(sched, {.name = options.name + ".netin", .batch = options.batch}, port, &pool_,
              &switch_.input(), report_sink, &deep_copies_),
      // --- audio board ---
      audio_cpu_(sched, options.name + ".audio.cpu"),
      mic_chan_(sched, options.name + ".mic"),
      muting_(MutingConfig{.enabled = options.muting_enabled}),
      codec_in_(sched,
                {.name = options.name + ".codec.in", .clock_drift = options.audio_clock_drift},
                mic, &mic_chan_),
      audio_up_(sched, options.name + ".audio.up"),
      sender_(sched,
              {.name = options.name + ".audio.sender",
               .stream = options.mic_stream,
               .start_immediately = false,
               .costs = options.costs},
              &mic_chan_, &pool_, &audio_up_, &audio_cpu_,
              options.muting_enabled ? &muting_ : nullptr, report_sink),
      audio_up_link_(sched, options.name + ".link.audio_up", &audio_up_, &switch_.input()),
      audio_down_(sched, options.name + ".audio.down"),
      audio_down_link_(sched, options.name + ".link.audio_down", &to_audio_buf_.output(),
                       &audio_down_),
      bank_(options.clawback, Seconds(4),
            nullptr),  // reporter optional; clawback reports via receiver
      receiver_(sched, {.name = options.name + ".audio.receiver", .costs = options.costs},
                &audio_down_, &bank_, &audio_cpu_, report_sink),
      codec_out_(sched, {.name = options.name + ".codec.out",
                         .record_samples = options.record_played_audio}),
      mixer_(sched,
             AudioMixerOptions{.name = options.name + ".audio.mixer",
                               .clock_drift = options.audio_clock_drift,
                               .costs = options.costs},
             &bank_, &audio_cpu_, &codec_out_, options.muting_enabled ? &muting_ : nullptr),
      // --- video boards ---
      video_up_(sched, options.name + ".video.up"),
      video_up_link_(sched, options.name + ".fifo.video_up", &video_up_, &switch_.input(),
                     kVideoFifoBps),
      video_down_(sched, options.name + ".video.down"),
      video_down_link_(sched, options.name + ".fifo.video_down", &to_display_buf_.output(),
                       &video_down_, kVideoFifoBps) {
  // The bank has no Scheduler of its own; hand it the box's recorder so
  // clawback occupancy/drops appear on "<box>.clawback.*" tracks.
  bank_.BindTrace(sched->trace(), options.name + ".clawback");
  dest_audio_out_ = switch_.AddDestination("audio_out", &to_audio_buf_);
  dest_display_ = switch_.AddDestination("display", &to_display_buf_);
  dest_network_ = switch_.AddDestination("network", &net_out_.input(), &net_out_.ready());

  if (options.with_video) {
    pattern_ = std::make_unique<MovingBarPattern>(options.video_width);
    framestore_ = std::make_unique<FrameStore>(sched, pattern_.get(), options.video_width,
                                               options.video_height);
    display_ = std::make_unique<VideoDisplay>(
        sched,
        VideoDisplayOptions{.name = options.name + ".display",
                            .width = options.video_width,
                            .height = options.video_height},
        &video_down_, report_sink);
  }
  if (options.with_repository) {
    RepositoryOptions repo = options.repository;
    repo.name = options.name + ".repo";
    repository_ = std::make_unique<Repository>(sched, repo, report_sink);
    dest_repository_ = switch_.AddDestination("repository", &repository_->input(),
                                              &repository_->ready());
  }
}

PandoraBox::PandoraBox(Scheduler* sched, AtmNetwork* net, Options options,
                       ReportSink* report_sink)
    : sched_(sched),
      net_(net),
      options_(std::move(options)),
      report_sink_(report_sink),
      port_(net->AddPort(options_.name + ".port", options_.network_egress_bps,
                         options_.pool_buffers, report_sink,
                         options_.shard < 0 ? 0 : options_.shard)),
      mic_stream_(options_.mic_stream) {
  boards_ = std::make_unique<Boards>(sched_, net_, port_, options_, mic_source(), report_sink_);
}

SampleSource* PandoraBox::mic_source() {
  if (options_.custom_mic != nullptr) {
    return options_.custom_mic;
  }
  if (owned_mic_ == nullptr) {
    switch (options_.mic) {
      case MicKind::kSine:
        owned_mic_ =
            std::make_unique<SineSource>(options_.mic_frequency, options_.mic_amplitude);
        break;
      case MicKind::kSpeech:
        owned_mic_ = std::make_unique<SpeechLikeSource>(options_.mic_amplitude);
        break;
      case MicKind::kSilence:
        owned_mic_ = std::make_unique<SilenceSource>();
        break;
    }
  }
  return owned_mic_.get();
}

void PandoraBox::Start() {
  PANDORA_CHECK(!started_);
  started_ = true;
  Boards& b = boards();
  b.switch_.Start();
  b.to_audio_buf_.Start();
  b.to_display_buf_.Start();
  b.net_out_.Start();
  b.net_in_.Start();

  b.codec_in_.Start();
  b.sender_.Start();
  b.audio_up_link_.Start();
  b.audio_down_link_.Start();
  b.receiver_.Start();
  b.codec_out_.Start();
  b.mixer_.Start();

  if (options_.with_video) {
    b.video_up_link_.Start();
    b.video_down_link_.Start();
    b.display_->Start();
  }
  if (b.repository_ != nullptr) {
    b.repository_->Start();
  }
}

void PandoraBox::Crash() {
  PANDORA_CHECK(boards_ != nullptr, "crashing a box that is already down");
  // Link first: anything arriving from now on is discarded at the port, and
  // deliveries already parked on the rx channel are drained, so no peer's
  // forwarder stays parked against a box that will never receive again.
  net_->SetPortUp(port_, false);  // NOLINT(pandora-fault-hooks): crash lifecycle
  // Kill this box's whole process group — components, relays, per-segment
  // forwarders, pending host commands — by name prefix.  The kill sweep
  // returns every parked segment to the pool, which is still alive here.
  const std::string prefix = options_.name + ".";
  sched_->KillProcesses([&prefix](const ProcessCtx& ctx) {
    return ctx.name.compare(0, prefix.size(), prefix) == 0;
  });
  // Now the boards themselves: queued segments drain back to the pool in
  // destruction order (consumers before the pool), then the pool goes.
  boards_.reset();
  mic_producing_ = false;
  started_ = false;
  ++crash_count_;
}

void PandoraBox::Restart() {
  PANDORA_CHECK(boards_ == nullptr, "restarting a box that is not down");
  boards_ = std::make_unique<Boards>(sched_, net_, port_, options_, mic_source(), report_sink_);
  net_->SetPortUp(port_, true);   // NOLINT(pandora-fault-hooks): crash lifecycle
  net_->RestartPort(port_);       // NOLINT(pandora-fault-hooks): crash lifecycle
  Start();
}

void PandoraBox::SetAudioClockDrift(double drift) {
  // Stored in Options so a later Restart() boots with the stepped quartz.
  options_.audio_clock_drift = drift;
  if (boards_ != nullptr) {
    boards_->codec_in_.SetClockDrift(drift);
    boards_->codec_out_.SetClockDrift(drift);
    boards_->mixer_.SetClockDrift(drift);
  }
}

void PandoraBox::EnsureMicProducing() {
  if (mic_producing_) {
    return;
  }
  mic_producing_ = true;
  SendAsync(sched_, &boards().sender_.commands(),
            Command{CommandVerb::kStartStream, mic_stream_, 0, 0},
            options_.name + ".host.startmic");
}

StreamId PandoraBox::AddCameraStream(StreamId stream, const Rect& rect, int rate_numer,
                                     int rate_denom, int segments_per_frame, LineCoding coding) {
  PANDORA_CHECK(options_.with_video);
  Boards& b = boards();
  VideoCaptureOptions capture_options;
  capture_options.name = options_.name + ".capture." + std::to_string(stream);
  capture_options.stream = stream;
  capture_options.rect = rect;
  capture_options.rate_numer = rate_numer;
  capture_options.rate_denom = rate_denom;
  capture_options.segments_per_frame = segments_per_frame;
  capture_options.coding = coding;
  b.captures_.push_back(std::make_unique<VideoCapture>(sched_, capture_options,
                                                       b.framestore_.get(), &b.pool_,
                                                       &b.video_up_, &b.server_cpu_,
                                                       report_sink_));
  b.captures_.back()->Start();
  return stream;
}

}  // namespace pandora
