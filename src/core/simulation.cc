#include "src/core/simulation.h"

#include "src/runtime/check.h"

namespace pandora {
namespace {

ShardSetOptions ToShardSetOptions(const SimulationOptions& options) {
  ShardSetOptions shard_options;
  shard_options.shards = options.shards;
  shard_options.threads = options.threads;
  shard_options.lookahead = options.lookahead;
  return shard_options;
}

}  // namespace

Simulation::Simulation(uint64_t seed) : Simulation(SimulationOptions{.seed = seed}) {}

Simulation::Simulation(const SimulationOptions& options)
    : shards_(ToShardSetOptions(options)),
      reports_(),
      net_(&shards_, options.seed),
      placement_rng_(options.seed ^ 0x9e3779b97f4a7c15ull) {
  // One collector per shard, each bound to its shard's recorder: the control
  // plane's reports land on the same timeline as the telemetry recorded by
  // the runtime/buffers/network of that shard, and a collector is only ever
  // written by its own shard's worker (or the coordinator at a barrier).
  reports_.reserve(static_cast<size_t>(shards_.shard_count()));
  for (int s = 0; s < shards_.shard_count(); ++s) {
    reports_.push_back(std::make_unique<ReportCollector>());
    reports_.back()->BindTrace(shards_.shard(s).trace());
  }
}

Simulation::~Simulation() {
  // Destroy every coroutine frame before the boxes (whose pools and
  // channels the frames reference) go away.
  shards_.Shutdown();
}

PandoraBox& Simulation::AddBox(PandoraBox::Options options) {
  if (options.mic_stream == kInvalidStream) {
    options.mic_stream = AllocateStream();
  }
  // Resolve placement: a pinned shard must exist; -1 draws from the seeded
  // placement stream (uniform over shards) so un-pinned worlds spread out
  // deterministically per seed, and shard_count()==1 stays on the fast path
  // without consuming a draw.
  if (options.shard < 0) {
    options.shard = shards_.shard_count() > 1
                        ? static_cast<int>(placement_rng_.UniformInt(0, shards_.shard_count() - 1))
                        : 0;
  }
  PANDORA_CHECK(options.shard < shards_.shard_count(),
                "PandoraBox::Options::shard out of range for this Simulation's ShardSet");
  const int shard = options.shard;
  const std::string name = options.name;
  boxes_.push_back(std::make_unique<PandoraBox>(&shards_.shard(shard), &net_, std::move(options),
                                                reports_[static_cast<size_t>(shard)].get()));
  // First add wins for duplicate names, matching the old linear scan.
  box_index_.emplace(name, boxes_.size() - 1);
  if (started_) {
    boxes_.back()->Start();
  }
  return *boxes_.back();
}

void Simulation::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  for (auto& box : boxes_) {
    box->Start();
  }
}

StreamId Simulation::SendAudio(PandoraBox& src, PandoraBox& dst, const CallPath& path) {
  // 1. The destination allocates the stream number and is configured first.
  StreamId at_dst = AllocateStream();
  dst.server_switch().OpenRoute(at_dst, dst.dest_audio_out(), /*incoming=*/true, /*audio=*/true);
  // 2. The network circuit (the VCI carries the destination's stream id).
  net_.OpenCircuit(src.port(), at_dst, dst.port(), path.hops, path.direct);
  // 3. The source's switch routes the microphone stream to the network.
  src.server_switch().OpenRoute(src.mic_stream(), src.dest_network(), /*incoming=*/false,
                                /*audio=*/true, /*out_vci=*/at_dst);
  // 4. Finally, command the source to begin producing data.
  src.EnsureMicProducing();
  CallRecord record;
  record.kind = CallRecord::Kind::kAudio;
  record.src = &src;
  record.dst = &dst;
  record.src_stream = src.mic_stream();
  record.at_dst = at_dst;
  record.path = path;
  calls_.push_back(std::move(record));
  return at_dst;
}

StreamId Simulation::SplitAudioTo(PandoraBox& src, StreamId src_stream, PandoraBox& dst,
                                  const CallPath& path) {
  StreamId at_dst = AllocateStream();
  dst.server_switch().OpenRoute(at_dst, dst.dest_audio_out(), /*incoming=*/true, /*audio=*/true);
  net_.OpenCircuit(src.port(), at_dst, dst.port(), path.hops, path.direct);
  // The route table update adds the new VCI without disturbing the copies
  // already flowing (principle 6).
  src.server_switch().OpenRoute(src_stream, src.dest_network(), /*incoming=*/false,
                                /*audio=*/true, /*out_vci=*/at_dst);
  src.EnsureMicProducing();
  CallRecord record;
  record.kind = CallRecord::Kind::kAudio;
  record.src = &src;
  record.dst = &dst;
  record.src_stream = src_stream;
  record.at_dst = at_dst;
  record.path = path;
  calls_.push_back(std::move(record));
  return at_dst;
}

StreamId Simulation::SendVideo(PandoraBox& src, PandoraBox& dst, const Rect& rect,
                               int rate_numer, int rate_denom, int segments_per_frame,
                               const CallPath& path) {
  StreamId at_dst = AllocateStream();
  dst.server_switch().OpenRoute(at_dst, dst.dest_display(), /*incoming=*/true, /*audio=*/false);
  net_.OpenCircuit(src.port(), at_dst, dst.port(), path.hops, path.direct);
  StreamId local = AllocateStream();
  src.server_switch().OpenRoute(local, src.dest_network(), /*incoming=*/false, /*audio=*/false,
                                /*out_vci=*/at_dst);
  src.AddCameraStream(local, rect, rate_numer, rate_denom, segments_per_frame);
  calls_.push_back(CallRecord{.kind = CallRecord::Kind::kVideo,
                              .src = &src,
                              .dst = &dst,
                              .src_stream = local,
                              .at_dst = at_dst,
                              .path = path,
                              .rect = rect,
                              .rate_numer = rate_numer,
                              .rate_denom = rate_denom,
                              .segments_per_frame = segments_per_frame});
  return at_dst;
}

StreamId Simulation::ShowLocalVideo(PandoraBox& box, const Rect& rect, int rate_numer,
                                    int rate_denom, int segments_per_frame) {
  StreamId local = AllocateStream();
  box.server_switch().OpenRoute(local, box.dest_display(), /*incoming=*/false, /*audio=*/false);
  box.AddCameraStream(local, rect, rate_numer, rate_denom, segments_per_frame);
  return local;
}

void Simulation::HangUpAudio(PandoraBox& src, PandoraBox& dst, StreamId at_dst) {
  // Reverse of the set-up order: source first, so no more traffic enters
  // the circuit, then the circuit, then the destination's plumbing.
  src.server_switch().CloseNetworkCopy(src.mic_stream(), at_dst, src.dest_network());
  net_.CloseCircuit(src.port(), at_dst);
  dst.server_switch().CloseRoute(at_dst, dst.dest_audio_out());
  for (CallRecord& call : calls_) {
    if (call.src == &src && call.dst == &dst && call.at_dst == at_dst) {
      call.active = false;
    }
  }
}

PandoraBox* Simulation::FindBox(const std::string& name) {
  auto it = box_index_.find(name);
  return it == box_index_.end() ? nullptr : boxes_[it->second].get();
}

void Simulation::CrashBox(PandoraBox& box) {
  // Suspend every live leg touching the box, tearing down the surviving
  // endpoint's half of the plumbing.  The dead endpoint's state is about to
  // be destroyed wholesale, so only the peer needs host attention.
  for (CallRecord& call : calls_) {
    if (!call.active || call.suspended || (call.src != &box && call.dst != &box)) {
      continue;
    }
    call.suspended = true;
    if (call.dst == &box && !call.src->crashed()) {
      // The receiver died: stop the sender's copy toward the dead VCI.  Any
      // other copies of the same source stream keep flowing (principle 6).
      call.src->server_switch().CloseNetworkCopy(call.src_stream, call.at_dst,
                                                 call.src->dest_network());
    }
    if (call.src == &box) {
      call.src_down = true;
      if (!call.dst->crashed()) {
        // The sender died: the receiver's stream table drops the dead
        // peer's row; its other calls are untouched.
        DestinationId dest = call.kind == CallRecord::Kind::kAudio ? call.dst->dest_audio_out()
                                                                   : call.dst->dest_display();
        call.dst->server_switch().CloseRoute(call.at_dst, dest);
      }
    }
    // The circuit is keyed by the (surviving) source port; close it in
    // either case so a restart reopens it cleanly.
    net_.CloseCircuit(call.src->port(), call.at_dst);
  }
  box.Crash();
}

void Simulation::RestartBox(PandoraBox& box) {
  box.Restart();
  for (CallRecord& call : calls_) {
    if (!call.active || !call.suspended || (call.src != &box && call.dst != &box)) {
      continue;
    }
    if (call.src->crashed() || call.dst->crashed()) {
      continue;  // the peer is still down; its restart will re-plumb
    }
    ReestablishCall(call);
  }
}

void Simulation::ReestablishCall(CallRecord& call) {
  PandoraBox& src = *call.src;
  PandoraBox& dst = *call.dst;
  const bool audio = call.kind == CallRecord::Kind::kAudio;
  // Same order and same ids as the original plumbing: destination first,
  // then circuit, then source, then (for audio) the producer command.
  dst.server_switch().OpenRoute(call.at_dst, audio ? dst.dest_audio_out() : dst.dest_display(),
                                /*incoming=*/true, audio);
  net_.OpenCircuit(src.port(), call.at_dst, dst.port(), call.path.hops, call.path.direct);
  src.server_switch().OpenRoute(call.src_stream, src.dest_network(), /*incoming=*/false, audio,
                                /*out_vci=*/call.at_dst);
  if (audio) {
    src.EnsureMicProducing();
  } else if (call.src_down) {
    // The sender's reboot took its capture processes with it (a surviving
    // sender whose receiver crashed keeps the camera running).
    src.AddCameraStream(call.src_stream, call.rect, call.rate_numer, call.rate_denom,
                        call.segments_per_frame);
  }
  call.suspended = false;
  call.src_down = false;
}

void Simulation::RecordStream(PandoraBox& box, StreamId stream, bool audio) {
  box.repository()->Arm(stream);
  box.server_switch().OpenRoute(stream, box.dest_repository(), /*incoming=*/true, audio);
}

void Simulation::FinishRecording(PandoraBox& box, StreamId stream) {
  box.server_switch().CloseRoute(stream, box.dest_repository());
  box.repository()->Finish(stream);
}

StreamId Simulation::PlayRecording(PandoraBox& box, StreamId stored, int blocks_per_segment) {
  StreamId playback = AllocateStream();
  box.server_switch().OpenRoute(playback, box.dest_audio_out(), /*incoming=*/true,
                                /*audio=*/true);
  box.repository()->Play(stored, playback, &box.switch_input(), &box.pool(),
                         blocks_per_segment);
  return playback;
}

StreamId Simulation::PlayVideoRecording(PandoraBox& box, StreamId stored) {
  StreamId playback = AllocateStream();
  box.server_switch().OpenRoute(playback, box.dest_display(), /*incoming=*/true,
                                /*audio=*/false);
  box.repository()->Play(stored, playback, &box.switch_input(), &box.pool());
  return playback;
}

}  // namespace pandora
