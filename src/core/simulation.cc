#include "src/core/simulation.h"

namespace pandora {

Simulation::Simulation(uint64_t seed) : sched_(), reports_(), net_(&sched_, seed) {
  // One timeline: the control plane's reports land on the same trace as the
  // telemetry recorded by the runtime/buffers/network.
  reports_.BindTrace(sched_.trace());
}

Simulation::~Simulation() {
  // Destroy every coroutine frame before the boxes (whose pools and
  // channels the frames reference) go away.
  sched_.Shutdown();
}

PandoraBox& Simulation::AddBox(PandoraBox::Options options) {
  if (options.mic_stream == kInvalidStream) {
    options.mic_stream = AllocateStream();
  }
  boxes_.push_back(std::make_unique<PandoraBox>(&sched_, &net_, std::move(options), &reports_));
  if (started_) {
    boxes_.back()->Start();
  }
  return *boxes_.back();
}

void Simulation::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  for (auto& box : boxes_) {
    box->Start();
  }
}

StreamId Simulation::SendAudio(PandoraBox& src, PandoraBox& dst, const CallPath& path) {
  // 1. The destination allocates the stream number and is configured first.
  StreamId at_dst = AllocateStream();
  dst.server_switch().OpenRoute(at_dst, dst.dest_audio_out(), /*incoming=*/true, /*audio=*/true);
  // 2. The network circuit (the VCI carries the destination's stream id).
  net_.OpenCircuit(src.port(), at_dst, dst.port(), path.hops, path.direct);
  // 3. The source's switch routes the microphone stream to the network.
  src.server_switch().OpenRoute(src.mic_stream(), src.dest_network(), /*incoming=*/false,
                                /*audio=*/true, /*out_vci=*/at_dst);
  // 4. Finally, command the source to begin producing data.
  src.EnsureMicProducing();
  return at_dst;
}

StreamId Simulation::SplitAudioTo(PandoraBox& src, StreamId src_stream, PandoraBox& dst,
                                  const CallPath& path) {
  StreamId at_dst = AllocateStream();
  dst.server_switch().OpenRoute(at_dst, dst.dest_audio_out(), /*incoming=*/true, /*audio=*/true);
  net_.OpenCircuit(src.port(), at_dst, dst.port(), path.hops, path.direct);
  // The route table update adds the new VCI without disturbing the copies
  // already flowing (principle 6).
  src.server_switch().OpenRoute(src_stream, src.dest_network(), /*incoming=*/false,
                                /*audio=*/true, /*out_vci=*/at_dst);
  src.EnsureMicProducing();
  return at_dst;
}

StreamId Simulation::SendVideo(PandoraBox& src, PandoraBox& dst, const Rect& rect,
                               int rate_numer, int rate_denom, int segments_per_frame,
                               const CallPath& path) {
  StreamId at_dst = AllocateStream();
  dst.server_switch().OpenRoute(at_dst, dst.dest_display(), /*incoming=*/true, /*audio=*/false);
  net_.OpenCircuit(src.port(), at_dst, dst.port(), path.hops, path.direct);
  StreamId local = AllocateStream();
  src.server_switch().OpenRoute(local, src.dest_network(), /*incoming=*/false, /*audio=*/false,
                                /*out_vci=*/at_dst);
  src.AddCameraStream(local, rect, rate_numer, rate_denom, segments_per_frame);
  return at_dst;
}

StreamId Simulation::ShowLocalVideo(PandoraBox& box, const Rect& rect, int rate_numer,
                                    int rate_denom, int segments_per_frame) {
  StreamId local = AllocateStream();
  box.server_switch().OpenRoute(local, box.dest_display(), /*incoming=*/false, /*audio=*/false);
  box.AddCameraStream(local, rect, rate_numer, rate_denom, segments_per_frame);
  return local;
}

void Simulation::HangUpAudio(PandoraBox& src, PandoraBox& dst, StreamId at_dst) {
  // Reverse of the set-up order: source first, so no more traffic enters
  // the circuit, then the circuit, then the destination's plumbing.
  src.server_switch().CloseNetworkCopy(src.mic_stream(), at_dst, src.dest_network());
  net_.CloseCircuit(src.port(), at_dst);
  dst.server_switch().CloseRoute(at_dst, dst.dest_audio_out());
}

void Simulation::RecordStream(PandoraBox& box, StreamId stream, bool audio) {
  box.repository()->Arm(stream);
  box.server_switch().OpenRoute(stream, box.dest_repository(), /*incoming=*/true, audio);
}

void Simulation::FinishRecording(PandoraBox& box, StreamId stream) {
  box.server_switch().CloseRoute(stream, box.dest_repository());
  box.repository()->Finish(stream);
}

StreamId Simulation::PlayRecording(PandoraBox& box, StreamId stored, int blocks_per_segment) {
  StreamId playback = AllocateStream();
  box.server_switch().OpenRoute(playback, box.dest_audio_out(), /*incoming=*/true,
                                /*audio=*/true);
  box.repository()->Play(stored, playback, &box.switch_input(), &box.pool(),
                         blocks_per_segment);
  return playback;
}

StreamId Simulation::PlayVideoRecording(PandoraBox& box, StreamId stored) {
  StreamId playback = AllocateStream();
  box.server_switch().OpenRoute(playback, box.dest_display(), /*incoming=*/true,
                                /*audio=*/false);
  box.repository()->Play(stored, playback, &box.switch_input(), &box.pool());
  return playback;
}

}  // namespace pandora
