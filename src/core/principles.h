// The eight Pandora design principles (paper section 2), as a checklist of
// where each one lives in this codebase.
//
//  P1 kOutgoingPriority — under overload, incoming streams degrade before
//     outgoing ones (reversed for repositories).
//     -> server/degrade.h (DegradesBefore), Repository's high-priority disk.
//  P2 kAudioPriority — video degrades before audio.
//     -> server/degrade.h; server/netio.h (separate audio/video buffers,
//        audio drained first, small video buffer).
//  P3 kNewStreamPriority — longest-open streams degrade first.
//     -> server/degrade.h (open_order term), server/stream_table.h stamps.
//  P4 kCommandPriority — stream processing can never lock out commands.
//     -> runtime/alt.h (PRI ALT); every process lists its command channel
//        as guard 0 (switch, buffers, senders, capture).
//  P5 kUpstreamIndependence — a split stream's slow destination must not
//     affect the other copies.
//     -> buffer/decoupling.h (ready channel), server/switch.cc (drop, never
//        block), segment/sequence.h (destination-side recovery).
//  P6 kReconfigurationContinuity — adding/removing destinations leaves the
//     other copies undisturbed.
//     -> server/stream_table.h + switch command handling (tables updated
//        between segments, never during one).
//  P7 kMinimiseDelay — delay minimised at every stage.
//     -> 2-block/4ms default segments (audio/sender.h), segments despatched
//        as soon as ready (video/capture.cc), clawback's 4ms lower target.
//  P8 kLocalAdaptation — buffering/timing decisions adapt to local
//     observations.
//     -> buffer/clawback.h (growth + clawback, auto stream lifecycle),
//        server/degrade.h (pressure-driven suppression with decay).
#ifndef PANDORA_SRC_CORE_PRINCIPLES_H_
#define PANDORA_SRC_CORE_PRINCIPLES_H_

namespace pandora {

enum class Principle {
  kOutgoingPriority = 1,
  kAudioPriority = 2,
  kNewStreamPriority = 3,
  kCommandPriority = 4,
  kUpstreamIndependence = 5,
  kReconfigurationContinuity = 6,
  kMinimiseDelay = 7,
  kLocalAdaptation = 8,
};

}  // namespace pandora

#endif  // PANDORA_SRC_CORE_PRINCIPLES_H_
