// PandoraBox: one complete Pandora's Box, wired per figures 1.2 and 1.3.
//
// Boards and their interconnect:
//   audio board   — codec capture/playout, block handler (AudioSender),
//                   clawback bank + receiver + mixer, muting; joined to the
//                   server by 20 Mbit/s links.
//   capture board — framestore + per-stream VideoCapture; video reaches the
//                   server over a 100 Mbit/s fifo.
//   mixer board   — VideoDisplay (frame assembly, tear-free blit), fed from
//                   the server over a 100 Mbit/s fifo.
//   server board  — buffer pool (allocator), the Switch, per-destination
//                   decoupling buffers, network in/out handlers.
//   network board — an AtmPort on the shared ATM fabric.
//
// The host-side control surface (allocate stream, plumb destination back to
// source, start the source — section 1.1) lives on Simulation, which owns
// the boxes and the network.
#ifndef PANDORA_SRC_CORE_BOX_H_
#define PANDORA_SRC_CORE_BOX_H_

#include <memory>
#include <string>
#include <vector>

#include "src/audio/codec.h"
#include "src/audio/costs.h"
#include "src/audio/mixer.h"
#include "src/audio/muting.h"
#include "src/audio/receiver.h"
#include "src/audio/sender.h"
#include "src/audio/signal.h"
#include "src/buffer/clawback.h"
#include "src/buffer/decoupling.h"
#include "src/buffer/pool.h"
#include "src/control/report.h"
#include "src/net/atm.h"
#include "src/repository/repository.h"
#include "src/runtime/resource.h"
#include "src/runtime/scheduler.h"
#include "src/server/netio.h"
#include "src/server/relay.h"
#include "src/server/switch.h"
#include "src/video/capture.h"
#include "src/video/display.h"
#include "src/video/framestore.h"

namespace pandora {

class PandoraBox {
 public:
  struct Options {
    std::string name = "box";
    // Local stream number for the microphone (Simulation allocates these).
    StreamId mic_stream = kInvalidStream;
    // Audio source at this box's microphone.
    MicKind mic = MicKind::kSine;
    double mic_frequency = 440.0;
    double mic_amplitude = 9000.0;
    SampleSource* custom_mic = nullptr;  // overrides `mic` if set
    double audio_clock_drift = 0.0;      // quartz tolerance, ~1e-5
    bool muting_enabled = false;
    bool record_played_audio = false;  // codec playout keeps every sample
    // Video hardware.
    bool with_video = true;
    int video_width = 64;
    int video_height = 48;
    // Server resources.
    size_t pool_buffers = 256;
    // Network interface rate ("mixed traffic 20 Mbit/s link", fig 1.2).
    int64_t network_egress_bps = 20'000'000;
    size_t audio_out_buffer = 32;
    size_t display_buffer = 16;
    NetworkOutputOptions netout;
    // CPU cost calibration.
    AudioCpuCosts costs;
    ClawbackConfig clawback;
    // Attach a repository (recording reverses P1 on this box).
    bool with_repository = false;
    RepositoryOptions repository;
  };

  PandoraBox(Scheduler* sched, AtmNetwork* net, Options options, ReportSink* report_sink);

  void Start();

  // --- Host-side controls ---------------------------------------------------

  // The local microphone stream's id (starts producing on first use).
  StreamId mic_stream() const { return mic_stream_; }
  void EnsureMicProducing();

  // Adds a camera stream; returns its local stream id (video must be on).
  StreamId AddCameraStream(StreamId stream, const Rect& rect, int rate_numer, int rate_denom,
                           int segments_per_frame, LineCoding coding = LineCoding::kDpcmLine);

  // --- Topology handles (used by Simulation's plumbing) ----------------------

  Switch& server_switch() { return switch_; }
  AtmPort* port() { return port_; }
  DestinationId dest_audio_out() const { return dest_audio_out_; }
  DestinationId dest_display() const { return dest_display_; }
  DestinationId dest_network() const { return dest_network_; }
  DestinationId dest_repository() const { return dest_repository_; }
  Channel<SegmentRef>& switch_input() { return switch_.input(); }
  BufferPool& pool() { return pool_; }

  // --- Observability ----------------------------------------------------------

  const std::string& name() const { return options_.name; }
  AudioMixer& mixer() { return mixer_; }
  CodecOutput& codec_out() { return codec_out_; }
  AudioReceiver& audio_receiver() { return receiver_; }
  AudioSender& audio_sender() { return sender_; }
  ClawbackBank& clawback_bank() { return bank_; }
  MutingControl& muting() { return muting_; }
  VideoDisplay* display() { return display_.get(); }
  FrameStore* framestore() { return framestore_.get(); }
  VideoCapture* capture(size_t i) { return captures_.at(i).get(); }
  NetworkOutput& network_output() { return net_out_; }
  NetworkInput& network_input() { return net_in_; }
  Repository* repository() { return repository_.get(); }
  CpuModel& audio_cpu() { return audio_cpu_; }
  CpuModel& server_cpu() { return server_cpu_; }
  DecouplingBuffer& audio_out_buffer() { return to_audio_buf_; }

 private:
  SampleSource* mic_source();

  Scheduler* sched_;
  AtmNetwork* net_;
  Options options_;
  ReportSink* report_sink_;

  // Server board.
  CpuModel server_cpu_;
  BufferPool pool_;
  Switch switch_;
  DecouplingBuffer to_audio_buf_;
  DecouplingBuffer to_display_buf_;
  AtmPort* port_;
  NetworkOutput net_out_;
  NetworkInput net_in_;
  DestinationId dest_audio_out_ = kInvalidDestination;
  DestinationId dest_display_ = kInvalidDestination;
  DestinationId dest_network_ = kInvalidDestination;
  DestinationId dest_repository_ = kInvalidDestination;

  // Audio board.
  CpuModel audio_cpu_;
  std::unique_ptr<SampleSource> owned_mic_;
  Channel<AudioBlock> mic_chan_;
  MutingControl muting_;
  CodecInput codec_in_;
  Channel<SegmentRef> audio_up_;
  AudioSender sender_;
  LinkRelay audio_up_link_;
  Channel<SegmentRef> audio_down_;
  LinkRelay audio_down_link_;
  ClawbackBank bank_;
  AudioReceiver receiver_;
  CodecOutput codec_out_;
  AudioMixer mixer_;

  // Capture + mixer (display) boards.
  std::unique_ptr<MovingBarPattern> pattern_;
  std::unique_ptr<FrameStore> framestore_;
  Channel<SegmentRef> video_up_;
  LinkRelay video_up_link_;
  Channel<SegmentRef> video_down_;
  LinkRelay video_down_link_;
  std::unique_ptr<VideoDisplay> display_;
  std::vector<std::unique_ptr<VideoCapture>> captures_;

  std::unique_ptr<Repository> repository_;

  StreamId mic_stream_ = kInvalidStream;
  bool mic_producing_ = false;
  bool started_ = false;
};

}  // namespace pandora

#endif  // PANDORA_SRC_CORE_BOX_H_
