// PandoraBox: one complete Pandora's Box, wired per figures 1.2 and 1.3.
//
// Boards and their interconnect:
//   audio board   — codec capture/playout, block handler (AudioSender),
//                   clawback bank + receiver + mixer, muting; joined to the
//                   server by 20 Mbit/s links.
//   capture board — framestore + per-stream VideoCapture; video reaches the
//                   server over a 100 Mbit/s fifo.
//   mixer board   — VideoDisplay (frame assembly, tear-free blit), fed from
//                   the server over a 100 Mbit/s fifo.
//   server board  — buffer pool (allocator), the Switch, per-destination
//                   decoupling buffers, network in/out handlers.
//   network board — an AtmPort on the shared ATM fabric.
//
// The host-side control surface (allocate stream, plumb destination back to
// source, start the source — section 1.1) lives on Simulation, which owns
// the boxes and the network.
//
// Crash/restart (fault injection): every board lives inside the Boards
// struct behind a unique_ptr.  Crash() takes the port's link down, kills
// every process in the box's "<name>." group mid-run (see
// Scheduler::KillProcesses) and destroys the boards — queued segments drain
// back to the pool while it is still alive, then the pool itself goes.
// Restart() rebuilds the boards cold: empty buffers, fresh stats, streams
// re-registered by the host (Simulation::RestartBox).  The AtmPort and the
// microphone hardware survive the reboot; everything else is lost, exactly
// as a real power cycle would lose it.
#ifndef PANDORA_SRC_CORE_BOX_H_
#define PANDORA_SRC_CORE_BOX_H_

#include <memory>
#include <string>
#include <vector>

#include "src/audio/codec.h"
#include "src/audio/costs.h"
#include "src/audio/mixer.h"
#include "src/audio/muting.h"
#include "src/audio/receiver.h"
#include "src/audio/sender.h"
#include "src/audio/signal.h"
#include "src/buffer/clawback.h"
#include "src/buffer/decoupling.h"
#include "src/buffer/pool.h"
#include "src/control/report.h"
#include "src/net/atm.h"
#include "src/repository/repository.h"
#include "src/runtime/check.h"
#include "src/runtime/resource.h"
#include "src/runtime/scheduler.h"
#include "src/server/netio.h"
#include "src/server/relay.h"
#include "src/server/switch.h"
#include "src/video/capture.h"
#include "src/video/display.h"
#include "src/video/framestore.h"

namespace pandora {

class PandoraBox {
 public:
  struct Options {
    std::string name = "box";
    // Local stream number for the microphone (Simulation allocates these).
    StreamId mic_stream = kInvalidStream;
    // Audio source at this box's microphone.
    MicKind mic = MicKind::kSine;
    double mic_frequency = 440.0;
    double mic_amplitude = 9000.0;
    SampleSource* custom_mic = nullptr;  // overrides `mic` if set
    double audio_clock_drift = 0.0;      // quartz tolerance, ~1e-5
    bool muting_enabled = false;
    bool record_played_audio = false;  // codec playout keeps every sample
    // Video hardware.
    bool with_video = true;
    int video_width = 64;
    int video_height = 48;
    // Server resources.
    size_t pool_buffers = 256;
    // Network interface rate ("mixed traffic 20 Mbit/s link", fig 1.2).
    int64_t network_egress_bps = 20'000'000;
    size_t audio_out_buffer = 32;
    size_t display_buffer = 16;
    NetworkOutputOptions netout;
    // One knob for every batched drain stage in this box (DESIGN.md §15):
    // applied to the switch, the network input and the network output
    // (overriding netout.batch).  max_batch = 1 restores the legacy
    // one-segment-per-wakeup engine bit for bit; max_hold = 0 (the default)
    // keeps batch boundaries at already-parked work only, so batching adds
    // zero simulated delay.
    BatchOptions batch;
    // CPU cost calibration.
    AudioCpuCosts costs;
    ClawbackConfig clawback;
    // Attach a repository (recording reverses P1 on this box).
    bool with_repository = false;
    RepositoryOptions repository;
    // ShardSet shard this box (all its boards, processes and its port) lives
    // on.  -1 asks Simulation's seeded placement policy to choose; a
    // concrete index pins the box (DESIGN.md §14).  Ignored outside a
    // Simulation-built world.
    int shard = -1;
  };

  PandoraBox(Scheduler* sched, AtmNetwork* net, Options options, ReportSink* report_sink);

  void Start();

  // --- Fault lifecycle -------------------------------------------------------

  // Power-fails the box mid-run: link down, every "<name>."-prefixed process
  // killed, all boards destroyed.  The rest of the simulation keeps going;
  // peers observe loss and (via the host) closed circuits.  Must not be
  // called from one of this box's own processes.
  void Crash();

  // Cold boot after Crash(): rebuilds the boards from Options, brings the
  // link back up and starts the component processes.  All buffers start
  // empty and all statistics start from zero; the host re-plumbs streams.
  void Restart();

  bool crashed() const { return boards_ == nullptr; }
  uint64_t crash_count() const { return crash_count_; }

  // Fault hook: steps this box's audio quartz (capture, playout and mixing
  // run off the same local oscillator).  Survives a restart.
  void SetAudioClockDrift(double drift);
  double audio_clock_drift() const { return options_.audio_clock_drift; }

  // --- Host-side controls ---------------------------------------------------

  // The local microphone stream's id (starts producing on first use).
  StreamId mic_stream() const { return mic_stream_; }
  void EnsureMicProducing();

  // Adds a camera stream; returns its local stream id (video must be on).
  StreamId AddCameraStream(StreamId stream, const Rect& rect, int rate_numer, int rate_denom,
                           int segments_per_frame, LineCoding coding = LineCoding::kDpcmLine);

  // --- Topology handles (used by Simulation's plumbing) ----------------------

  Switch& server_switch() { return boards().switch_; }
  AtmPort* port() { return port_; }
  DestinationId dest_audio_out() const { return boards().dest_audio_out_; }
  DestinationId dest_display() const { return boards().dest_display_; }
  DestinationId dest_network() const { return boards().dest_network_; }
  DestinationId dest_repository() const { return boards().dest_repository_; }
  Channel<SegmentRef>& switch_input() { return boards().switch_.input(); }
  BufferPool& pool() { return boards().pool_; }

  // --- Observability ----------------------------------------------------------

  const std::string& name() const { return options_.name; }
  // Shard this box was placed on (0 unless a spanning Simulation resolved
  // Options::shard to something else before construction).
  int shard() const { return options_.shard < 0 ? 0 : options_.shard; }
  AudioMixer& mixer() { return boards().mixer_; }
  CodecOutput& codec_out() { return boards().codec_out_; }
  AudioReceiver& audio_receiver() { return boards().receiver_; }
  AudioSender& audio_sender() { return boards().sender_; }
  ClawbackBank& clawback_bank() { return boards().bank_; }
  MutingControl& muting() { return boards().muting_; }
  VideoDisplay* display() { return boards().display_.get(); }
  FrameStore* framestore() { return boards().framestore_.get(); }
  VideoCapture* capture(size_t i) { return boards().captures_.at(i).get(); }
  NetworkOutput& network_output() { return boards().net_out_; }
  NetworkInput& network_input() { return boards().net_in_; }
  // Wire-path payload copies since (re)boot — encodes plus decodes.
  uint64_t deep_copies() const { return boards().deep_copies_; }
  Repository* repository() { return boards().repository_.get(); }
  CpuModel& audio_cpu() { return boards().audio_cpu_; }
  CpuModel& server_cpu() { return boards().server_cpu_; }
  DecouplingBuffer& audio_out_buffer() { return boards().to_audio_buf_; }

 private:
  // Everything that dies in a crash.  Construction wires the boards exactly
  // as the original single-shot constructor did; destruction order (reverse
  // of declaration) drains consumers before the pool they drain into.
  struct Boards {
    Boards(Scheduler* sched, AtmNetwork* net, AtmPort* port, const Options& options,
           SampleSource* mic, ReportSink* report_sink);

    // Server board.
    CpuModel server_cpu_;
    BufferPool pool_;
    Switch switch_;
    DecouplingBuffer to_audio_buf_;
    DecouplingBuffer to_display_buf_;
    // Deep copies of segment data on the wire path (one per encode at
    // net_out_, one per decode at net_in_): the §3.4 "once in, once out"
    // budget, asserted ≤ 2 per delivered segment by tests/wirepath_test.cc.
    uint64_t deep_copies_ = 0;
    NetworkOutput net_out_;
    NetworkInput net_in_;
    DestinationId dest_audio_out_ = kInvalidDestination;
    DestinationId dest_display_ = kInvalidDestination;
    DestinationId dest_network_ = kInvalidDestination;
    DestinationId dest_repository_ = kInvalidDestination;

    // Audio board.
    CpuModel audio_cpu_;
    Channel<AudioBlock> mic_chan_;
    MutingControl muting_;
    CodecInput codec_in_;
    Channel<SegmentRef> audio_up_;
    AudioSender sender_;
    LinkRelay audio_up_link_;
    Channel<SegmentRef> audio_down_;
    LinkRelay audio_down_link_;
    ClawbackBank bank_;
    AudioReceiver receiver_;
    CodecOutput codec_out_;
    AudioMixer mixer_;

    // Capture + mixer (display) boards.
    std::unique_ptr<MovingBarPattern> pattern_;
    std::unique_ptr<FrameStore> framestore_;
    Channel<SegmentRef> video_up_;
    LinkRelay video_up_link_;
    Channel<SegmentRef> video_down_;
    LinkRelay video_down_link_;
    std::unique_ptr<VideoDisplay> display_;
    std::vector<std::unique_ptr<VideoCapture>> captures_;

    std::unique_ptr<Repository> repository_;
  };

  Boards& boards() const {
    PANDORA_CHECK(boards_ != nullptr, "box is crashed");
    return *boards_;
  }
  SampleSource* mic_source();

  Scheduler* sched_;
  AtmNetwork* net_;
  Options options_;
  ReportSink* report_sink_;

  // The physical microphone outlives a reboot: after Restart() the source
  // resumes from its current phase, it does not rewind.
  std::unique_ptr<SampleSource> owned_mic_;
  // The network port object belongs to AtmNetwork and survives a crash; only
  // its link state and transmit process cycle with the box.
  AtmPort* port_;

  std::unique_ptr<Boards> boards_;

  StreamId mic_stream_ = kInvalidStream;
  bool mic_producing_ = false;
  bool started_ = false;
  uint64_t crash_count_ = 0;
};

}  // namespace pandora

#endif  // PANDORA_SRC_CORE_BOX_H_
