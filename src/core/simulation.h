// Simulation: the top-level facade — a scheduler, an ATM fabric, a host-side
// report log and any number of Pandora boxes, plus the host plumbing of
// section 1.1: "To set data flowing, it is necessary to allocate a new
// stream number, inform each process from the destination back to the
// source what is to be done to that stream, and then command the source to
// begin producing data.  The data will then flow indefinitely without any
// further interaction with the host."
#ifndef PANDORA_SRC_CORE_SIMULATION_H_
#define PANDORA_SRC_CORE_SIMULATION_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/box.h"
#include "src/net/atm.h"
#include "src/runtime/scheduler.h"
#include "src/runtime/shard_set.h"

namespace pandora {

// Options for one network leg (direct quality or bridged hops).
struct CallPath {
  std::vector<NetHop*> hops;
  HopQuality direct;
};

// World-building options: how many shards the world spans, how many OS
// worker threads execute them, and the conservative-sync lookahead.  The
// defaults build the classic single-shard world (bit-identical to the
// pre-shard engine).  In a spanning world every cross-shard call needs a
// final-stage propagation >= lookahead (AtmNetwork::OpenCircuit checks), so
// either use link latencies >= the default 1 ms or dial `lookahead` down to
// the minimum cross-shard link latency (DESIGN.md §14).
struct SimulationOptions {
  uint64_t seed = 1;
  int shards = 1;
  int threads = 1;
  Duration lookahead = Millis(1);
};

class Simulation {
 public:
  // One leg of host-plumbed traffic, remembered so churn (box crash and
  // restart) can tear down and re-establish exactly the same plumbing.
  struct CallRecord {
    enum class Kind { kAudio, kVideo } kind = Kind::kAudio;
    PandoraBox* src = nullptr;
    PandoraBox* dst = nullptr;
    StreamId src_stream = kInvalidStream;  // id at the source (mic / camera)
    StreamId at_dst = kInvalidStream;      // id at the destination (the VCI)
    CallPath path;
    // Camera parameters, for re-registering a crashed sender's capture.
    Rect rect;
    int rate_numer = 1;
    int rate_denom = 1;
    int segments_per_frame = 4;
    bool active = true;      // false once hung up for good
    bool suspended = false;  // a crashed endpoint took the leg down
    bool src_down = false;   // the sender crashed (its camera needs re-adding)
  };

  explicit Simulation(uint64_t seed = 1);
  explicit Simulation(const SimulationOptions& options);
  ~Simulation();

  // Shard 0's scheduler — the coordinator.  With the default options the
  // whole world lives here and the ShardSet's legacy fast path keeps runs
  // bit-identical to the pre-shard engine.  With `SimulationOptions::shards
  // > 1` the Simulation *spans* the set: each box (boards, port, processes)
  // runs on its resolved Options::shard, cross-shard circuits ride the
  // ShardSet mailboxes under the lookahead contract, and host-side entry
  // points (plumbing, crash/restart, record/play) must run on the
  // coordinator — between Run* calls or inside a ShardSet::PostGlobal
  // stop-the-world callback, which is how the fault driver injects churn.
  Scheduler& scheduler() { return shards_.scheduler(); }
  ShardSet& shard_set() { return shards_; }
  AtmNetwork& network() { return net_; }
  // Host-side report log.  Reports are collected per shard (a collector is
  // not thread-safe); `reports()` is shard 0's, which in a single-shard
  // world — and for every host-plumbed control report — is all of them.
  ReportCollector& reports() { return *reports_[0]; }
  ReportCollector& reports_for(int shard) { return *reports_.at(static_cast<size_t>(shard)); }
  Time now() const { return shards_.now(); }

  PandoraBox& AddBox(PandoraBox::Options options);

  // Starts every box (call after adding boxes, before Run*).
  void Start();

  void RunFor(Duration d) { shards_.RunFor(d); }
  void RunUntil(Time t) { shards_.RunUntil(t); }

  StreamId AllocateStream() { return next_stream_++; }

  // --- Host plumbing (destination back to source) ---------------------------

  // One-way live audio: src's microphone to dst's loudspeaker.  Returns the
  // stream id at the DESTINATION (per the paper, the VCI carries it).
  StreamId SendAudio(PandoraBox& src, PandoraBox& dst, const CallPath& path = {});

  // One-way live video: a camera rectangle of src shown on dst's display.
  StreamId SendVideo(PandoraBox& src, PandoraBox& dst, const Rect& rect, int rate_numer = 1,
                     int rate_denom = 1, int segments_per_frame = 4,
                     const CallPath& path = {});

  // Local camera shown on the box's own display (no network leg).
  StreamId ShowLocalVideo(PandoraBox& box, const Rect& rect, int rate_numer = 1,
                          int rate_denom = 1, int segments_per_frame = 4);

  // Adds dst as a further destination of an existing audio stream from src
  // (stream splitting, principles 5/6).  `src_stream` is the stream id at
  // the SOURCE box (e.g. src.mic_stream()).
  StreamId SplitAudioTo(PandoraBox& src, StreamId src_stream, PandoraBox& dst,
                        const CallPath& path = {});

  // Tears down one audio leg set up by SendAudio/SplitAudioTo: the source
  // stops sending on that VCI, the circuit closes, and the destination's
  // route is removed — without disturbing any other copies (principle 6).
  void HangUpAudio(PandoraBox& src, PandoraBox& dst, StreamId at_dst);

  // --- Churn (used by the fault driver and chaos tests) ---------------------

  PandoraBox* FindBox(const std::string& name);
  size_t box_count() const { return boxes_.size(); }
  PandoraBox& box(size_t i) { return *boxes_.at(i); }
  const std::vector<CallRecord>& calls() const { return calls_; }

  // Crashes `box` mid-run.  Every active call leg touching it is suspended:
  // the surviving endpoint's plumbing is closed host-side (its stream table
  // drops the dead peer's rows; other calls are untouched) and the circuit
  // is torn down.  Repository record/play sessions on the box are simply
  // lost, as a power cut would lose them.
  void CrashBox(PandoraBox& box);

  // Reboots a crashed box and re-establishes every suspended leg whose
  // other endpoint is alive, reusing the original stream ids and paths —
  // deterministic re-registration.  Legs whose peer is still down stay
  // suspended until that peer restarts.
  void RestartBox(PandoraBox& box);

  // Records a stream arriving at (or produced by) `box` into its repository.
  void RecordStream(PandoraBox& box, StreamId stream, bool audio = true);
  void FinishRecording(PandoraBox& box, StreamId stream);
  // Plays a recording on the same box's loudspeaker; returns playback stream.
  StreamId PlayRecording(PandoraBox& box, StreamId stored,
                         int blocks_per_segment = kDefaultBlocksPerSegment);
  // Plays a recorded video stream on the same box's display.
  StreamId PlayVideoRecording(PandoraBox& box, StreamId stored);

 private:
  // Re-plumbs one suspended leg whose endpoints are both alive again.
  void ReestablishCall(CallRecord& call);

  ShardSet shards_;
  std::vector<std::unique_ptr<ReportCollector>> reports_;  // one per shard
  AtmNetwork net_;
  // Placement policy for boxes that leave Options::shard at -1: a seeded
  // stream independent of the traffic RNGs, so adding instrumentation never
  // reshuffles the world.
  Rng placement_rng_;
  std::vector<std::unique_ptr<PandoraBox>> boxes_;
  std::unordered_map<std::string, size_t> box_index_;  // name → boxes_ index
  std::vector<CallRecord> calls_;
  StreamId next_stream_ = 1;
  bool started_ = false;
};

}  // namespace pandora

#endif  // PANDORA_SRC_CORE_SIMULATION_H_
