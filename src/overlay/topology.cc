#include "src/overlay/topology.h"

#include "src/runtime/check.h"
#include "src/runtime/random.h"

namespace pandora {

OverlayTopology GenerateTopology(const TopologyParams& params) {
  PANDORA_CHECK(params.receivers > 0);
  PANDORA_CHECK(params.fanout >= 2);
  PANDORA_CHECK(!params.classes.empty());

  double total_fraction = 0.0;
  for (const LinkClass& cls : params.classes) {
    total_fraction += cls.fraction;
  }
  PANDORA_CHECK(total_fraction > 0.0);

  OverlayTopology topology;
  topology.params = params;
  topology.links.reserve(static_cast<size_t>(params.receivers));

  Rng rng(params.seed);
  for (int r = 0; r < params.receivers; ++r) {
    // Tier draw by cumulative fraction, then per-receiver latency spread
    // inside the tier.  Two draws per receiver, always, so the stream
    // position (and therefore every later receiver's link) is independent
    // of which tier earlier receivers landed in.
    const double pick = rng.Uniform(0.0, total_fraction);
    const double spread = rng.Uniform(0.0, 1.0);
    double cumulative = 0.0;
    const LinkClass* chosen = &params.classes.back();
    for (const LinkClass& cls : params.classes) {
      cumulative += cls.fraction;
      if (pick < cumulative) {
        chosen = &cls;
        break;
      }
    }
    OverlayLink link = chosen->link;
    link.latency += static_cast<Duration>(spread * static_cast<double>(chosen->latency_spread));
    topology.links.push_back(link);
  }
  return topology;
}

uint64_t TopologyHash(const OverlayTopology& topology) {
  uint64_t hash = kFnvOffset;
  hash = FnvMix(hash, topology.params.seed);
  hash = FnvMix(hash, static_cast<uint64_t>(topology.params.receivers));
  hash = FnvMix(hash, static_cast<uint64_t>(topology.params.fanout));
  for (const OverlayLink& link : topology.links) {
    hash = FnvMix(hash, static_cast<uint64_t>(link.bits_per_second));
    hash = FnvMix(hash, static_cast<uint64_t>(link.latency));
    // Loss rates are exact binary fractions or small literals; hashing the
    // bit pattern keeps the golden stable across compilers.
    uint64_t loss_bits = 0;
    static_assert(sizeof(loss_bits) == sizeof(link.loss_rate));
    __builtin_memcpy(&loss_bits, &link.loss_rate, sizeof(loss_bits));
    hash = FnvMix(hash, loss_bits);
  }
  return hash;
}

}  // namespace pandora
