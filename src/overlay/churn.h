// OverlayChurnDriver: applies FaultPlan churn events to a live multicast.
//
// The fault subsystem owns the storm's SHAPE (seeded draw, text round-trip,
// replay via PANDORA_FAULT_PLAN); this driver owns its EFFECT.  A kChurn
// event `@t churn recv=r for=d` becomes Leave(r) at t and — unless d is 0,
// the gone-for-good case — Join(r) at t+d.  Timers are armed in plan order
// at Start, so coincident departures and rejoins replay in exactly the
// order the plan lists them (the wheel fires equal deadlines in arming
// order), which is what makes a churn-storm run a pure function of
// (topology, params, seed, plan).
#ifndef PANDORA_SRC_OVERLAY_CHURN_H_
#define PANDORA_SRC_OVERLAY_CHURN_H_

#include <cstdint>

#include "src/fault/plan.h"
#include "src/overlay/multicast.h"

namespace pandora {

class OverlayChurnDriver {
 public:
  OverlayChurnDriver(Scheduler* sched, OverlayMulticast* multicast, FaultPlan plan);

  // Arms one leave timer (and one rejoin timer for non-permanent events)
  // per churn event.  Non-churn events in a mixed plan are counted ignored
  // — they belong to a Simulation's FaultDriver, which in turn skips ours.
  void Start();

  int64_t departures() const { return departures_; }
  int64_t rejoins() const { return rejoins_; }
  int64_t ignored() const { return ignored_; }

 private:
  Scheduler* sched_;
  OverlayMulticast* multicast_;
  FaultPlan plan_;
  int64_t departures_ = 0;
  int64_t rejoins_ = 0;
  int64_t ignored_ = 0;
};

}  // namespace pandora

#endif  // PANDORA_SRC_OVERLAY_CHURN_H_
