// TreeRepair: re-parenting around receiver churn, one tree at a time.
//
// A departure is two structural moments, not one.  At onset the leaver is
// DETACHED: its parent stops relaying to it instantly (nothing upstream
// blocks — P5), but its former children still point at it, so their
// subtrees go dark on that one stripe.  After the repair delay (failure
// detection plus control-plane round trip, modeled as a constant by the
// caller) REPAIR re-attaches each orphaned subtree — root intact, interior
// untouched — to the nearest ancestor of the leaver with a spare slot,
// falling back to an interior-group scan and finally the source.
//
// The P6 payoff of interior-disjoint striping is visible right here: the
// leaver had children in at most ONE tree (its interior tree), so repair
// touches exactly one stripe and the other k-1 trees' structures are
// bit-identical before and after — the property tests assert that, and the
// bench shows it as audio that keeps flowing mid-repair.
#ifndef PANDORA_SRC_OVERLAY_REPAIR_H_
#define PANDORA_SRC_OVERLAY_REPAIR_H_

#include <vector>

#include "src/overlay/tree.h"

namespace pandora {

struct RepairAction {
  int tree = 0;
  int orphan = 0;      // root of the re-attached subtree (or the joiner)
  int new_parent = 0;  // receiver id or kOverlaySource
};

class TreeRepair {
 public:
  TreeRepair(const OverlayTopology* topology, StripedTrees* trees)
      : topology_(topology), trees_(trees) {}

  // Onset: removes r from every tree (its parents stop feeding it).  Its
  // children keep their stale parent pointers until Repair.  Returns false
  // (no-op) if r is already absent.
  bool Detach(int r);

  // Completion: re-attaches every subtree orphaned by r's departure.
  // Safe to call when r had no children (returns no actions).
  std::vector<RepairAction> Repair(int r);

  // Rejoin: attaches r as a leaf in every tree.  Returns empty if r is
  // already present.  r immediately counts as interior-group capacity in
  // its own tree again.
  std::vector<RepairAction> Join(int r);

  // Re-attachments that found every candidate full and overloaded the
  // source.  Zero in every test scenario; counted rather than crashed so a
  // pathological storm degrades instead of aborting a bench.
  int64_t overflow() const { return overflow_; }

 private:
  // True when x's parent chain in tree t reaches the source — i.e. x is in
  // the live tree, not in a dangling orphaned subtree.
  bool Rooted(int t, int x) const;
  // True when x is inside the subtree of `root` in tree t.
  bool InSubtree(int t, int root, int x) const;
  // Picks a parent with a free slot for `orphan` in tree t, preferring the
  // ancestor chain starting at `hint` (the leaver's old parent).
  int FindParent(int t, int orphan, int hint);
  void Link(int t, int node, int p);

  const OverlayTopology* topology_;
  StripedTrees* trees_;
  // Leaver's old parent per (tree, receiver), recorded at Detach so Repair
  // can start its ancestor climb where the subtree used to hang.
  std::vector<int> detach_parent_;
  int64_t overflow_ = 0;
};

}  // namespace pandora

#endif  // PANDORA_SRC_OVERLAY_REPAIR_H_
