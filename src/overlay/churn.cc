#include "src/overlay/churn.h"

#include <algorithm>

namespace pandora {

OverlayChurnDriver::OverlayChurnDriver(Scheduler* sched, OverlayMulticast* multicast,
                                       FaultPlan plan)
    : sched_(sched), multicast_(multicast), plan_(std::move(plan)) {
  plan_.Normalize();
}

void OverlayChurnDriver::Start() {
  const Time now = sched_->now();
  for (const FaultEvent& event : plan_.events) {
    if (event.kind != FaultKind::kChurn) {
      ++ignored_;
      continue;
    }
    OverlayMulticast* mc = multicast_;
    const int target = event.target;
    sched_->AddTimer(std::max(now, event.at), TimerCallback([mc, target] { mc->Leave(target); }));
    ++departures_;
    if (event.duration > 0) {
      sched_->AddTimer(std::max(now, event.at + event.duration),
                       TimerCallback([mc, target] { mc->Join(target); }));
      ++rejoins_;
    }
  }
}

}  // namespace pandora
