// TreeBuilder: distribution-tree construction over an overlay population.
//
// Two ideas from the overlay-streaming literature, composed:
//
//  * Multiple-tree striping ("Multiple-Tree Push-based Overlay Streaming"):
//    the stream's segments round-robin across k trees (segment seq rides
//    tree seq % k), and the trees are INTERIOR-DISJOINT — receiver r may
//    relay (have children) only in tree r % k, and is a leaf in the other
//    k-1.  A receiver failure therefore cuts at most one stripe; the other
//    k-1 keep flowing while that one tree repairs.  This is Pandora's P6
//    (operations on one copy never disturb the others) promoted from one
//    switch to a city of them.
//
//  * Near-optimal-delay interior ordering ("Deterministic Near-Optimal P2P
//    Streaming"): both policies fill the same heap-shaped left-complete
//    f-ary tree (FIFO parent queue), so positions acquire subtree sizes
//    that are non-increasing in attach order.  kNearOptimalDelay assigns
//    interior nodes to those positions in ascending uplink-latency order;
//    by the rearrangement inequality the sum of latency(position) x
//    subtree_size(position) — i.e. total delivery delay — is minimal over
//    all assignments of the same interior set to the same shape.  The
//    property test asserts the resulting mean delay never exceeds
//    kBalancedFanout's as a theorem, not a tuning observation.
#ifndef PANDORA_SRC_OVERLAY_TREE_H_
#define PANDORA_SRC_OVERLAY_TREE_H_

#include <cstddef>
#include <vector>

#include "src/overlay/topology.h"

namespace pandora {

// `parent` sentinels: a receiver hangs off the stream source, or is
// currently absent from the overlay (churned out / not yet joined).
inline constexpr int kOverlaySource = -1;
inline constexpr int kOverlayDetached = -2;

enum class TreePolicy {
  kBalancedFanout,    // interior nodes attach in receiver-id order
  kNearOptimalDelay,  // interior nodes attach in ascending uplink latency
};

struct StripedTrees {
  int stripes = 1;
  int fanout = 8;
  TreePolicy policy = TreePolicy::kBalancedFanout;
  // parent[t][r]: r's parent in tree t (receiver id, kOverlaySource, or
  // kOverlayDetached).  children[t][r] mirrors it; root_children[t] is the
  // source's child list in tree t.
  std::vector<std::vector<int>> parent;
  std::vector<std::vector<std::vector<int>>> children;
  std::vector<std::vector<int>> root_children;

  int receiver_count() const {
    return parent.empty() ? 0 : static_cast<int>(parent[0].size());
  }
  // Which tree carries segment `seq` — the striping round-robin.
  int tree_of(int64_t seq) const { return static_cast<int>(seq % stripes); }
  // Which tree receiver r may relay in.
  int interior_tree(int r) const { return r % stripes; }
  bool absent(int r) const { return parent[0][static_cast<size_t>(r)] == kOverlayDetached; }
};

class TreeBuilder {
 public:
  // Builds k interior-disjoint trees over the full population.  Requires
  // fanout * (smallest interior group + 1) >= receivers so every receiver
  // finds a slot (checked).  Same (topology, stripes, policy) -> same trees.
  static StripedTrees Build(const OverlayTopology& topology, int stripes, TreePolicy policy);
};

// --- Invariant checkers (used by property tests and PANDORA_CHECK sites) ----

// Every present receiver's parent chain reaches the source in every tree.
bool SpansAll(const StripedTrees& trees);
// Any receiver with children in tree t is in interior group t.
bool InteriorDisjoint(const StripedTrees& trees);
// No child list (including the source's) exceeds the fanout bound.
bool RespectsFanout(const StripedTrees& trees);
// Parent chains terminate (no cycles), even for detached subtrees.
bool IsAcyclic(const StripedTrees& trees);

struct DelayStats {
  double mean_us = 0.0;  // mean source->receiver delay across trees
  Duration max_us = 0;   // deepest delay anywhere
};

// Source->receiver delay per (tree, receiver): the sum of uplink latencies
// down the path (each edge costs the CHILD's access latency).  Absent
// receivers are excluded.
DelayStats ComputeDelayStats(const OverlayTopology& topology, const StripedTrees& trees);

}  // namespace pandora

#endif  // PANDORA_SRC_OVERLAY_TREE_H_
