// OverlayMulticast: the striped distribution data plane.
//
// City-scale means 10^3..10^5 receivers, far past what full PandoraBox /
// AtmPort instances (each owning a wire pool) can populate.  The data plane
// is therefore a lightweight timer layer directly on the Scheduler: the
// source emits one audio segment per cadence tick onto tree seq % k, and
// every delivery is a timer whose callback relays to the receiver's
// children in that tree — recursive split-at-the-switch, exactly the
// paper's P5/P6 fan-out but composed to arbitrary depth.
//
// P5 at every hop, by construction: a relay never waits for a slow child.
// Each (receiver, tree) uplink lane serializes copies at the lane's service
// rate (the access uplink dimensioned 1/k per stripe, which is what
// striping buys); when a lane's backlog exceeds the queue budget the copy
// is DROPPED and counted at the child, and the sibling copies go out on
// time.  A choked subtree therefore starves alone — the property tests
// assert its cousins see bit-for-bit full delivery.
//
// Everything is deterministic from (topology seed, multicast seed, plan):
// timers with equal deadlines fire in arming order, loss draws happen in
// event order from one seeded generator, and RunHash() folds the complete
// observable outcome (deliveries, drops, repairs, join latencies) into one
// value the replay tests compare across runs.
#ifndef PANDORA_SRC_OVERLAY_MULTICAST_H_
#define PANDORA_SRC_OVERLAY_MULTICAST_H_

#include <cstdint>
#include <vector>

#include "src/overlay/repair.h"
#include "src/overlay/topology.h"
#include "src/overlay/tree.h"
#include "src/runtime/random.h"
#include "src/runtime/scheduler.h"

namespace pandora {

struct MulticastParams {
  Duration segment_interval = Millis(4);  // live audio cadence (segment/constants.h)
  int64_t segment_bytes = 68;             // E16 wire image of a live audio segment
  Duration repair_delay = Millis(10);     // leave detection + re-parent latency
  // Per-lane backlog (in copies) before a copy is shed.  A relay bursts all
  // of its children's copies at one instant, so the budget must exceed the
  // fanout: a full burst is normal and drains before the next segment, while
  // a lane that cannot drain between segments backs up past any budget.
  int64_t queue_budget = 16;
};

struct OverlayReceiverStats {
  int64_t delivered = 0;
  int64_t dropped_queue = 0;   // parent lane over budget — P5 drop, not block
  int64_t dropped_loss = 0;    // access-link loss
  int64_t dropped_late = 0;    // duplicate / out-of-order after a re-parent
  int64_t missed_absent = 0;   // copy arrived while churned out
  Time last_delivery = 0;
};

struct OverlayRepairEvent {
  Time at = 0;
  int tree = 0;
  int node = 0;        // orphan root or (re)joiner
  int new_parent = 0;  // receiver id or kOverlaySource
};

class OverlayMulticast {
 public:
  // `trees` must outlive the multicast and is mutated by churn.
  OverlayMulticast(Scheduler* sched, const OverlayTopology* topology, StripedTrees* trees,
                   MulticastParams params, uint64_t seed);

  // Arms the source cadence; segments are emitted every interval until
  // `emit_until`.  Every receiver present at start has its join clock
  // running from time zero.
  void Start(Time emit_until);

  // Churn entry points (called by OverlayChurnDriver, tests, benches).
  // Leave detaches immediately and schedules the subtree repair after
  // repair_delay; Join attaches as a leaf and starts the join-to-first-
  // segment clock.  Ops against a receiver already in that state count as
  // skipped, like FaultDriver faults against closed circuits.
  void Leave(int r);
  void Join(int r);

  // --- Observability --------------------------------------------------------

  int64_t emitted() const { return next_seq_; }
  int64_t emitted_on_tree(int t) const { return emitted_by_tree_[static_cast<size_t>(t)]; }
  const OverlayReceiverStats& stats(int r) const { return stats_[static_cast<size_t>(r)]; }
  int64_t delivered_on_tree(int r, int t) const {
    return delivered_by_tree_[static_cast<size_t>(r) * static_cast<size_t>(trees_->stripes) +
                              static_cast<size_t>(t)];
  }
  const std::vector<Duration>& join_latencies() const { return join_latencies_; }
  const std::vector<OverlayRepairEvent>& repair_log() const { return repair_log_; }
  int64_t repairs() const { return repairs_; }
  int64_t churn_skipped() const { return churn_skipped_; }
  const TreeRepair& repair() const { return repair_; }

  // FNV-1a over every observable outcome of the run: per-receiver delivery
  // and drop counts, per-stripe deliveries, last-delivery stamps, join
  // latencies, and the repair log.  Two runs of the same (topology, params,
  // seed, plan) must agree bit-for-bit.
  uint64_t RunHash() const;

 private:
  void Emit();
  void Deliver(int tree, int node, int64_t seq);
  // Relays one copy from `parent` (kOverlaySource for the root) to `child`
  // on `tree`, applying lane serialization, queue budget and link loss.
  void RelayTo(int tree, int parent, int child, int64_t seq);
  void RepairNow(int r);
  Time& lane_busy(int tree, int node) {
    return lane_busy_[static_cast<size_t>(node) * static_cast<size_t>(trees_->stripes) +
                      static_cast<size_t>(tree)];
  }

  Scheduler* sched_;
  const OverlayTopology* topology_;
  StripedTrees* trees_;
  MulticastParams params_;
  TreeRepair repair_;
  Rng loss_rng_;  // drawn only for lossy links, in deterministic event order

  int64_t next_seq_ = 0;
  Time emit_until_ = 0;
  std::vector<int64_t> emitted_by_tree_;
  std::vector<OverlayReceiverStats> stats_;
  std::vector<int64_t> delivered_by_tree_;  // [r * stripes + t]
  // Highest sequence played per (receiver, stripe).  A re-parent can leave
  // copies from the old path in flight alongside the new parent's feed;
  // like the wire path's SequenceTracker, the receiver plays only strictly
  // increasing sequence numbers and sheds the overlap as dropped_late.
  std::vector<int64_t> last_played_seq_;    // [r * stripes + t]
  std::vector<Time> lane_busy_;             // [r * stripes + t], uplink lane busy-until
  std::vector<Duration> lane_service_;      // per receiver: us per copy on one lane
  std::vector<Time> join_time_;             // per receiver: last (re)join instant
  std::vector<uint8_t> awaiting_first_;     // join clock armed, first delivery pending
  std::vector<Duration> join_latencies_;
  std::vector<OverlayRepairEvent> repair_log_;
  int64_t repairs_ = 0;
  int64_t churn_skipped_ = 0;
  TraceSiteId join_hist_site_ = 0;
};

}  // namespace pandora

#endif  // PANDORA_SRC_OVERLAY_MULTICAST_H_
