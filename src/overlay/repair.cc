#include "src/overlay/repair.h"

#include <algorithm>

#include "src/runtime/check.h"

namespace pandora {

bool TreeRepair::Detach(int r) {
  if (trees_->absent(r)) {
    return false;
  }
  const int n = trees_->receiver_count();
  if (detach_parent_.empty()) {
    detach_parent_.assign(static_cast<size_t>(trees_->stripes) * static_cast<size_t>(n),
                          kOverlayDetached);
  }
  for (int t = 0; t < trees_->stripes; ++t) {
    std::vector<int>& parent = trees_->parent[static_cast<size_t>(t)];
    const int p = parent[static_cast<size_t>(r)];
    detach_parent_[static_cast<size_t>(t) * static_cast<size_t>(n) + static_cast<size_t>(r)] = p;
    std::vector<int>& siblings = p == kOverlaySource
                                     ? trees_->root_children[static_cast<size_t>(t)]
                                     : trees_->children[static_cast<size_t>(t)][static_cast<size_t>(p)];
    siblings.erase(std::find(siblings.begin(), siblings.end(), r));
    parent[static_cast<size_t>(r)] = kOverlayDetached;
  }
  return true;
}

std::vector<RepairAction> TreeRepair::Repair(int r) {
  std::vector<RepairAction> actions;
  if (!trees_->absent(r)) {
    // r rejoined before the repair fired: its parent chain is live again
    // and the stale children are already flowing through it.
    return actions;
  }
  const int n = trees_->receiver_count();
  for (int t = 0; t < trees_->stripes; ++t) {
    std::vector<int>& orphans = trees_->children[static_cast<size_t>(t)][static_cast<size_t>(r)];
    if (orphans.empty()) {
      continue;
    }
    const int hint =
        detach_parent_[static_cast<size_t>(t) * static_cast<size_t>(n) + static_cast<size_t>(r)];
    // Detach the whole batch first: an orphan must never be picked as
    // another orphan's new parent while its own chain still runs through r.
    std::vector<int> batch(orphans.begin(), orphans.end());
    orphans.clear();
    for (int c : batch) {
      const int np = FindParent(t, c, hint);
      Link(t, c, np);
      actions.push_back({t, c, np});
    }
  }
  return actions;
}

std::vector<RepairAction> TreeRepair::Join(int r) {
  std::vector<RepairAction> actions;
  if (!trees_->absent(r)) {
    return actions;
  }
  const int n = trees_->receiver_count();
  for (int t = 0; t < trees_->stripes; ++t) {
    int np = kOverlayDetached;
    for (int x = t; x < n; x += trees_->stripes) {
      if (x == r || trees_->absent(x)) {
        continue;
      }
      if (static_cast<int>(trees_->children[static_cast<size_t>(t)][static_cast<size_t>(x)].size()) >=
          trees_->fanout) {
        continue;
      }
      if (Rooted(t, x)) {
        np = x;
        break;
      }
    }
    if (np == kOverlayDetached) {
      if (static_cast<int>(trees_->root_children[static_cast<size_t>(t)].size()) >= trees_->fanout) {
        ++overflow_;
      }
      np = kOverlaySource;
    }
    Link(t, r, np);
    actions.push_back({t, r, np});
  }
  return actions;
}

bool TreeRepair::Rooted(int t, int x) const {
  const int n = trees_->receiver_count();
  int hops = 0;
  int at = x;
  while (at >= 0) {
    if (++hops > n) {
      return false;
    }
    at = trees_->parent[static_cast<size_t>(t)][static_cast<size_t>(at)];
  }
  return at == kOverlaySource;
}

bool TreeRepair::InSubtree(int t, int root, int x) const {
  const int n = trees_->receiver_count();
  int hops = 0;
  int at = x;
  while (at >= 0) {
    if (at == root) {
      return true;
    }
    if (++hops > n) {
      return false;
    }
    at = trees_->parent[static_cast<size_t>(t)][static_cast<size_t>(at)];
  }
  return false;
}

int TreeRepair::FindParent(int t, int orphan, int hint) {
  const int n = trees_->receiver_count();
  // 1. Climb the leaver's old ancestor chain: re-attaching near where the
  //    subtree hung keeps repair local and depth growth minimal.  Chain
  //    nodes are never inside the orphan's subtree (that would have been a
  //    cycle before the departure).
  int at = hint;
  int hops = 0;
  while (at >= 0 && ++hops <= n) {
    if (!trees_->absent(at) &&
        static_cast<int>(trees_->children[static_cast<size_t>(t)][static_cast<size_t>(at)].size()) <
            trees_->fanout &&
        Rooted(t, at)) {
      return at;
    }
    at = trees_->parent[static_cast<size_t>(t)][static_cast<size_t>(at)];
  }
  if (at == kOverlaySource &&
      static_cast<int>(trees_->root_children[static_cast<size_t>(t)].size()) < trees_->fanout) {
    return kOverlaySource;
  }
  // 2. Any interior-group node with a free slot — skipping the orphan's own
  //    subtree (attaching there would make a cycle) and dangling nodes.
  for (int x = t; x < n; x += trees_->stripes) {
    if (trees_->absent(x) || InSubtree(t, orphan, x) ||
        static_cast<int>(trees_->children[static_cast<size_t>(t)][static_cast<size_t>(x)].size()) >=
            trees_->fanout ||
        !Rooted(t, x)) {
      continue;
    }
    return x;
  }
  // 3. Source, overloaded if need be — degrade, don't abort.
  if (static_cast<int>(trees_->root_children[static_cast<size_t>(t)].size()) >= trees_->fanout) {
    ++overflow_;
  }
  return kOverlaySource;
}

void TreeRepair::Link(int t, int node, int p) {
  trees_->parent[static_cast<size_t>(t)][static_cast<size_t>(node)] = p;
  if (p == kOverlaySource) {
    trees_->root_children[static_cast<size_t>(t)].push_back(node);
  } else {
    trees_->children[static_cast<size_t>(t)][static_cast<size_t>(p)].push_back(node);
  }
}

}  // namespace pandora
