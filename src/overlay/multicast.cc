#include "src/overlay/multicast.h"

#include <algorithm>

#include "src/runtime/check.h"

namespace pandora {

OverlayMulticast::OverlayMulticast(Scheduler* sched, const OverlayTopology* topology,
                                   StripedTrees* trees, MulticastParams params, uint64_t seed)
    : sched_(sched),
      topology_(topology),
      trees_(trees),
      params_(params),
      repair_(topology, trees),
      loss_rng_(seed) {
  const int n = topology_->receiver_count();
  const int k = trees_->stripes;
  PANDORA_CHECK(n == trees_->receiver_count());
  emitted_by_tree_.assign(static_cast<size_t>(k), 0);
  stats_.assign(static_cast<size_t>(n), {});
  delivered_by_tree_.assign(static_cast<size_t>(n) * static_cast<size_t>(k), 0);
  last_played_seq_.assign(static_cast<size_t>(n) * static_cast<size_t>(k), -1);
  lane_busy_.assign(static_cast<size_t>(n) * static_cast<size_t>(k), 0);
  lane_service_.reserve(static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) {
    // The access uplink is dimensioned 1/k per stripe, so one copy occupies
    // a lane for k times the raw wire time.
    const int64_t bps = std::max<int64_t>(1, topology_->links[static_cast<size_t>(r)].bits_per_second);
    const int64_t us = (params_.segment_bytes * 8 * static_cast<int64_t>(kSecond) *
                            static_cast<int64_t>(k) +
                        bps - 1) /
                       bps;
    lane_service_.push_back(static_cast<Duration>(std::max<int64_t>(1, us)));
  }
  join_time_.assign(static_cast<size_t>(n), 0);
  awaiting_first_.assign(static_cast<size_t>(n), 0);
}

void OverlayMulticast::Start(Time emit_until) {
  emit_until_ = emit_until;
  const int n = topology_->receiver_count();
  for (int r = 0; r < n; ++r) {
    if (!trees_->absent(r)) {
      join_time_[static_cast<size_t>(r)] = sched_->now();
      awaiting_first_[static_cast<size_t>(r)] = 1;
    }
  }
  OverlayMulticast* self = this;
  sched_->AddTimer(sched_->now(), TimerCallback([self] { self->Emit(); }));
}

void OverlayMulticast::Emit() {
  const int64_t seq = next_seq_++;
  const int tree = trees_->tree_of(seq);
  ++emitted_by_tree_[static_cast<size_t>(tree)];
  for (int c : trees_->root_children[static_cast<size_t>(tree)]) {
    RelayTo(tree, kOverlaySource, c, seq);
  }
  const Time next = sched_->now() + params_.segment_interval;
  if (next < emit_until_) {
    OverlayMulticast* self = this;
    sched_->AddTimer(next, TimerCallback([self] { self->Emit(); }));
  }
}

void OverlayMulticast::RelayTo(int tree, int parent, int child, int64_t seq) {
  if (trees_->absent(child)) {
    // Detached between arming and relay; its own stats record the miss.
    ++stats_[static_cast<size_t>(child)].missed_absent;
    return;
  }
  const Time now = sched_->now();
  Time depart = now;
  if (parent != kOverlaySource) {
    // Serialize on the parent's per-stripe uplink lane; over-budget backlog
    // drops THIS copy and leaves the siblings' timing untouched (P5).
    Time& busy = lane_busy(tree, parent);
    const Duration service = lane_service_[static_cast<size_t>(parent)];
    const Time start = std::max(busy, now);
    if (start - now > params_.queue_budget * service) {
      ++stats_[static_cast<size_t>(child)].dropped_queue;
      return;
    }
    busy = start + service;
    depart = busy;
  }
  const OverlayLink& link = topology_->links[static_cast<size_t>(child)];
  if (loss_rng_.Bernoulli(link.loss_rate)) {
    ++stats_[static_cast<size_t>(child)].dropped_loss;
    return;
  }
  OverlayMulticast* self = this;
  const int node = child;
  sched_->AddTimer(depart + link.latency,
                   TimerCallback([self, tree, node, seq] { self->Deliver(tree, node, seq); }));
}

void OverlayMulticast::Deliver(int tree, int node, int64_t seq) {
  if (trees_->absent(node)) {
    ++stats_[static_cast<size_t>(node)].missed_absent;
    return;
  }
  OverlayReceiverStats& st = stats_[static_cast<size_t>(node)];
  int64_t& last = last_played_seq_[static_cast<size_t>(node) *
                                       static_cast<size_t>(trees_->stripes) +
                                   static_cast<size_t>(tree)];
  if (seq <= last) {
    // Old-path copy still in flight across a re-parent: a duplicate (or an
    // arrival too late to play).  Shed it and do not re-relay stale audio.
    ++st.dropped_late;
    return;
  }
  last = seq;
  ++st.delivered;
  st.last_delivery = sched_->now();
  ++delivered_by_tree_[static_cast<size_t>(node) * static_cast<size_t>(trees_->stripes) +
                       static_cast<size_t>(tree)];
  if (awaiting_first_[static_cast<size_t>(node)] != 0) {
    awaiting_first_[static_cast<size_t>(node)] = 0;
    const Duration latency = sched_->now() - join_time_[static_cast<size_t>(node)];
    join_latencies_.push_back(latency);
    PANDORA_TRACE_HISTOGRAM(sched_->trace(), join_hist_site_, "overlay.join_to_first_segment",
                            "us", latency);
  }
  for (int c : trees_->children[static_cast<size_t>(tree)][static_cast<size_t>(node)]) {
    RelayTo(tree, node, c, seq);
  }
}

void OverlayMulticast::Leave(int r) {
  if (!repair_.Detach(r)) {
    ++churn_skipped_;
    return;
  }
  awaiting_first_[static_cast<size_t>(r)] = 0;
  OverlayMulticast* self = this;
  sched_->AddTimer(sched_->now() + params_.repair_delay,
                   TimerCallback([self, r] { self->RepairNow(r); }));
}

void OverlayMulticast::Join(int r) {
  std::vector<RepairAction> actions = repair_.Join(r);
  if (actions.empty()) {
    ++churn_skipped_;
    return;
  }
  join_time_[static_cast<size_t>(r)] = sched_->now();
  awaiting_first_[static_cast<size_t>(r)] = 1;
  for (const RepairAction& a : actions) {
    repair_log_.push_back({sched_->now(), a.tree, a.orphan, a.new_parent});
  }
}

void OverlayMulticast::RepairNow(int r) {
  std::vector<RepairAction> actions = repair_.Repair(r);
  repairs_ += static_cast<int64_t>(actions.size());
  for (const RepairAction& a : actions) {
    repair_log_.push_back({sched_->now(), a.tree, a.orphan, a.new_parent});
  }
}

uint64_t OverlayMulticast::RunHash() const {
  uint64_t hash = kFnvOffset;
  hash = FnvMix(hash, static_cast<uint64_t>(next_seq_));
  for (int64_t e : emitted_by_tree_) {
    hash = FnvMix(hash, static_cast<uint64_t>(e));
  }
  for (const OverlayReceiverStats& st : stats_) {
    hash = FnvMix(hash, static_cast<uint64_t>(st.delivered));
    hash = FnvMix(hash, static_cast<uint64_t>(st.dropped_queue));
    hash = FnvMix(hash, static_cast<uint64_t>(st.dropped_loss));
    hash = FnvMix(hash, static_cast<uint64_t>(st.dropped_late));
    hash = FnvMix(hash, static_cast<uint64_t>(st.missed_absent));
    hash = FnvMix(hash, static_cast<uint64_t>(st.last_delivery));
  }
  for (int64_t d : delivered_by_tree_) {
    hash = FnvMix(hash, static_cast<uint64_t>(d));
  }
  for (Duration d : join_latencies_) {
    hash = FnvMix(hash, static_cast<uint64_t>(d));
  }
  for (const OverlayRepairEvent& e : repair_log_) {
    hash = FnvMix(hash, static_cast<uint64_t>(e.at));
    hash = FnvMix(hash, static_cast<uint64_t>(e.tree));
    hash = FnvMix(hash, static_cast<uint64_t>(e.node));
    hash = FnvMix(hash, static_cast<uint64_t>(e.new_parent));
  }
  hash = FnvMix(hash, static_cast<uint64_t>(repairs_));
  hash = FnvMix(hash, static_cast<uint64_t>(churn_skipped_));
  return hash;
}

}  // namespace pandora
