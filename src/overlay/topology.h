// Deterministic city-scale receiver topologies for overlay distribution.
//
// Pandora's split-at-the-switch fan-out (principles 5/6, section 3.4) is
// the 1993 ancestor of overlay multicast: a switch that duplicates buffer
// references to several downstream consumers IS an interior node of a
// distribution tree.  To scale the experiments from one LAN of a handful of
// boxes toward millions of receivers, src/overlay/ composes that fan-out
// recursively: every receiver doubles as a relay whose uplink can carry a
// bounded number of stream copies to children of its own.
//
// The topology generator produces the receiver POPULATION — each receiver's
// access-link quality, drawn from a seeded three-tier distribution (the
// shape WAN measurement studies keep finding: a fast well-connected core, a
// broad middle, and a constrained tail).  Tree STRUCTURE over that
// population is the TreeBuilder's job (src/overlay/tree.h).  Same
// (seed, params) -> byte-identical topology, always; TopologyHash gives the
// golden value determinism tests pin.
#ifndef PANDORA_SRC_OVERLAY_TOPOLOGY_H_
#define PANDORA_SRC_OVERLAY_TOPOLOGY_H_

#include <cstdint>
#include <vector>

#include "src/runtime/time.h"

namespace pandora {

// One receiver's access link, modeled like a HopQuality but owned by the
// overlay layer: the uplink rate bounds the receiver's relay fan-out, the
// latency is paid by every descendant, and loss strikes copies arriving AT
// this receiver.
struct OverlayLink {
  int64_t bits_per_second = 10'000'000;
  Duration latency = Millis(2);
  double loss_rate = 0.0;
};

// A quality tier plus the fraction of the population drawn from it.
struct LinkClass {
  double fraction = 0.0;  // fractions are normalized over all classes
  OverlayLink link;
  Duration latency_spread = 0;  // extra per-receiver uniform latency in [0, spread)
};

struct TopologyParams {
  uint64_t seed = 1;
  int receivers = 1000;  // 10^3 .. 10^5
  int fanout = 8;        // max children per interior node per tree
  // Default distribution: 60% metro fiber, 30% suburban cable, 10%
  // constrained tail.  All tiers lossless by default so the transitive
  // P5/P6 property tests can assert exact zero loss for unimpaired
  // receivers; benches dial loss in explicitly.
  std::vector<LinkClass> classes = {
      {0.6, {20'000'000, Millis(1), 0.0}, Millis(2)},
      {0.3, {8'000'000, Millis(4), 0.0}, Millis(6)},
      {0.1, {2'000'000, Millis(12), 0.0}, Millis(15)},
  };
};

struct OverlayTopology {
  TopologyParams params;
  std::vector<OverlayLink> links;  // index = receiver id
  int receiver_count() const { return static_cast<int>(links.size()); }
};

// Instantiates the population.  Same (params incl. seed) -> same topology.
OverlayTopology GenerateTopology(const TopologyParams& params);

// FNV-1a over every field of every link (plus the shaping params), for
// golden determinism tests and the overlay run hash.
uint64_t TopologyHash(const OverlayTopology& topology);

// Shared FNV-1a helpers (also folded into OverlayMulticast::RunHash).
inline constexpr uint64_t kFnvOffset = 1469598103934665603ull;
inline constexpr uint64_t kFnvPrime = 1099511628211ull;
inline uint64_t FnvMix(uint64_t hash, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (i * 8)) & 0xff;
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace pandora

#endif  // PANDORA_SRC_OVERLAY_TOPOLOGY_H_
