#include "src/overlay/sharded.h"

#include <algorithm>

#include "src/runtime/check.h"
#include "src/trace/trace.h"

namespace pandora {

ShardedOverlayMulticast::ShardedOverlayMulticast(ShardSet* shards,
                                                const OverlayTopology* topology,
                                                StripedTrees* trees, MulticastParams params,
                                                uint64_t seed)
    : shards_(shards),
      topology_(topology),
      trees_(trees),
      params_(params),
      repair_(topology, trees),
      seed_(seed) {
  const int n = topology_->receiver_count();
  const int k = trees_->stripes;
  const int s = shards_->shard_count();
  PANDORA_CHECK(n == trees_->receiver_count());
  scheds_.reserve(static_cast<size_t>(s));
  for (int i = 0; i < s; ++i) {
    scheds_.push_back(&shards_->shard(i));
  }
  if (s > 1) {
    // The access links ARE the conservative-sync slack: every cross-shard
    // hop (and drop notice) lands at depart + child's access latency, so
    // the slowest admissible lookahead is the fastest link in the city.
    for (const OverlayLink& link : topology_->links) {
      PANDORA_CHECK(link.latency >= shards_->lookahead(),
                    "overlay access latency below the ShardSet lookahead would break the "
                    "cross-shard delivery contract");
    }
  }
  emitted_by_tree_.assign(static_cast<size_t>(k), 0);
  stats_.assign(static_cast<size_t>(n), {});
  delivered_by_tree_.assign(static_cast<size_t>(n) * static_cast<size_t>(k), 0);
  last_played_seq_.assign(static_cast<size_t>(n) * static_cast<size_t>(k), -1);
  lane_busy_.assign(static_cast<size_t>(n) * static_cast<size_t>(k), 0);
  lane_service_.reserve(static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) {
    const int64_t bps =
        std::max<int64_t>(1, topology_->links[static_cast<size_t>(r)].bits_per_second);
    const int64_t us = (params_.segment_bytes * 8 * static_cast<int64_t>(kSecond) *
                            static_cast<int64_t>(k) +
                        bps - 1) /
                       bps;
    lane_service_.push_back(static_cast<Duration>(std::max<int64_t>(1, us)));
  }
  join_time_.assign(static_cast<size_t>(n), 0);
  awaiting_first_.assign(static_cast<size_t>(n), 0);
  join_log_.resize(static_cast<size_t>(s));
  for (auto& log : join_log_) {
    // Steady-state allocation-free: capacity for every owned receiver's
    // first join plus a generous churn-rejoin budget.
    log.reserve(static_cast<size_t>(n / s) + 1024);
  }
  join_hist_sites_.assign(static_cast<size_t>(s), 0);
}

void ShardedOverlayMulticast::Start(Time emit_until) {
  emit_until_ = emit_until;
  const int n = topology_->receiver_count();
  const Time now = shards_->now();
  for (int r = 0; r < n; ++r) {
    if (!trees_->absent(r)) {
      join_time_[static_cast<size_t>(r)] = now;
      awaiting_first_[static_cast<size_t>(r)] = 1;
    }
  }
  ShardedOverlayMulticast* self = this;
  scheds_[0]->AddTimer(now, TimerCallback([self] { self->Emit(); }));
}

void ShardedOverlayMulticast::Emit() {
  const int64_t seq = next_seq_++;
  const int tree = trees_->tree_of(seq);
  ++emitted_by_tree_[static_cast<size_t>(tree)];
  for (int c : trees_->root_children[static_cast<size_t>(tree)]) {
    RelayTo(tree, kOverlaySource, c, seq);
  }
  const Time next = scheds_[0]->now() + params_.segment_interval;
  if (next < emit_until_) {
    ShardedOverlayMulticast* self = this;
    scheds_[0]->AddTimer(next, TimerCallback([self] { self->Emit(); }));
  }
}

bool ShardedOverlayMulticast::LossDraw(int tree, int child, int64_t seq,
                                       double loss_rate) const {
  if (loss_rate <= 0.0) {
    return false;
  }
  // SplitMix64 finalizer over a per-copy key: the draw belongs to the edge
  // copy, not to a generator whose stream the partition could reorder.
  uint64_t x = seed_;
  x ^= 0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(tree) + 1);
  x ^= 0xbf58476d1ce4e5b9ull * (static_cast<uint64_t>(child) + 1);
  x ^= 0x94d049bb133111ebull * (static_cast<uint64_t>(seq) + 1);
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53 < loss_rate;
}

void ShardedOverlayMulticast::CountDrop(int child, int kind) {
  OverlayReceiverStats& st = stats_[static_cast<size_t>(child)];
  if (kind == kDropQueue) {
    ++st.dropped_queue;
  } else if (kind == kDropLoss) {
    ++st.dropped_loss;
  } else {
    ++st.missed_absent;
  }
}

void ShardedOverlayMulticast::RelayTo(int tree, int parent, int child, int64_t seq) {
  const int ps = parent == kOverlaySource ? 0 : shard_of(parent);
  const int cs = shard_of(child);
  Scheduler* sched = scheds_[static_cast<size_t>(ps)];
  const Time now = sched->now();
  const OverlayLink& link = topology_->links[static_cast<size_t>(child)];
  ShardedOverlayMulticast* self = this;
  if (trees_->absent(child)) {
    // Detached between arming and relay.  The miss belongs to the child's
    // counters; across shards it is charged when the copy would have
    // arrived, keeping every stat single-writer.
    if (cs == ps) {
      ++stats_[static_cast<size_t>(child)].missed_absent;
    } else {
      const int kind = kDropAbsent;
      shards_->Post(ps, cs, now + link.latency,
                    TimerCallback([self, child, kind] { self->CountDrop(child, kind); }));
    }
    return;
  }
  Time depart = now;
  if (parent != kOverlaySource) {
    // Serialize on the parent's per-stripe uplink lane; over-budget backlog
    // drops THIS copy and leaves the siblings' timing untouched (P5).
    Time& busy = lane_busy(tree, parent);
    const Duration service = lane_service_[static_cast<size_t>(parent)];
    const Time start = std::max(busy, now);
    if (start - now > params_.queue_budget * service) {
      if (cs == ps) {
        ++stats_[static_cast<size_t>(child)].dropped_queue;
      } else {
        const int kind = kDropQueue;
        shards_->Post(ps, cs, now + link.latency,
                      TimerCallback([self, child, kind] { self->CountDrop(child, kind); }));
      }
      return;
    }
    busy = start + service;
    depart = busy;
  }
  if (LossDraw(tree, child, seq, link.loss_rate)) {
    if (cs == ps) {
      ++stats_[static_cast<size_t>(child)].dropped_loss;
    } else {
      const int kind = kDropLoss;
      shards_->Post(ps, cs, depart + link.latency,
                    TimerCallback([self, child, kind] { self->CountDrop(child, kind); }));
    }
    return;
  }
  const int node = child;
  if (cs == ps) {
    sched->AddTimer(depart + link.latency,
                    TimerCallback([self, tree, node, seq] { self->Deliver(tree, node, seq); }));
  } else {
    shards_->Post(ps, cs, depart + link.latency,
                  TimerCallback([self, tree, node, seq] { self->Deliver(tree, node, seq); }));
  }
}

void ShardedOverlayMulticast::Deliver(int tree, int node, int64_t seq) {
  // Runs on `node`'s shard.
  if (trees_->absent(node)) {
    ++stats_[static_cast<size_t>(node)].missed_absent;
    return;
  }
  OverlayReceiverStats& st = stats_[static_cast<size_t>(node)];
  int64_t& last = last_played_seq_[static_cast<size_t>(node) *
                                       static_cast<size_t>(trees_->stripes) +
                                   static_cast<size_t>(tree)];
  if (seq <= last) {
    ++st.dropped_late;
    return;
  }
  last = seq;
  const int s = shard_of(node);
  const Time now = scheds_[static_cast<size_t>(s)]->now();
  ++st.delivered;
  st.last_delivery = now;
  ++delivered_by_tree_[static_cast<size_t>(node) * static_cast<size_t>(trees_->stripes) +
                       static_cast<size_t>(tree)];
  if (awaiting_first_[static_cast<size_t>(node)] != 0) {
    awaiting_first_[static_cast<size_t>(node)] = 0;
    const Duration latency = now - join_time_[static_cast<size_t>(node)];
    join_log_[static_cast<size_t>(s)].push_back({now, node, latency});
    PANDORA_TRACE_HISTOGRAM(scheds_[static_cast<size_t>(s)]->trace(),
                            join_hist_sites_[static_cast<size_t>(s)],
                            "overlay.join_to_first_segment", "us", latency);
  }
  for (int c : trees_->children[static_cast<size_t>(tree)][static_cast<size_t>(node)]) {
    RelayTo(tree, node, c, seq);
  }
}

void ShardedOverlayMulticast::Leave(int r) {
  if (!repair_.Detach(r)) {
    ++churn_skipped_;
    return;
  }
  awaiting_first_[static_cast<size_t>(r)] = 0;
  ShardedOverlayMulticast* self = this;
  shards_->PostGlobal(shards_->now() + params_.repair_delay,
                      TimerCallback([self, r] { self->RepairNow(r); }));
}

void ShardedOverlayMulticast::Join(int r) {
  std::vector<RepairAction> actions = repair_.Join(r);
  if (actions.empty()) {
    ++churn_skipped_;
    return;
  }
  join_time_[static_cast<size_t>(r)] = shards_->now();
  awaiting_first_[static_cast<size_t>(r)] = 1;
  for (const RepairAction& a : actions) {
    repair_log_.push_back({shards_->now(), a.tree, a.orphan, a.new_parent});
  }
}

void ShardedOverlayMulticast::RepairNow(int r) {
  std::vector<RepairAction> actions = repair_.Repair(r);
  repairs_ += static_cast<int64_t>(actions.size());
  for (const RepairAction& a : actions) {
    repair_log_.push_back({shards_->now(), a.tree, a.orphan, a.new_parent});
  }
}

std::vector<Duration> ShardedOverlayMulticast::JoinLatencies() const {
  std::vector<JoinRecord> merged;
  size_t total = 0;
  for (const auto& log : join_log_) {
    total += log.size();
  }
  merged.reserve(total);
  for (const auto& log : join_log_) {
    merged.insert(merged.end(), log.begin(), log.end());
  }
  std::sort(merged.begin(), merged.end(), [](const JoinRecord& a, const JoinRecord& b) {
    return a.at != b.at ? a.at < b.at : a.receiver < b.receiver;
  });
  std::vector<Duration> latencies;
  latencies.reserve(merged.size());
  for (const JoinRecord& record : merged) {
    latencies.push_back(record.latency);
  }
  return latencies;
}

uint64_t ShardedOverlayMulticast::RunHash() const {
  uint64_t hash = kFnvOffset;
  hash = FnvMix(hash, static_cast<uint64_t>(next_seq_));
  for (int64_t e : emitted_by_tree_) {
    hash = FnvMix(hash, static_cast<uint64_t>(e));
  }
  for (const OverlayReceiverStats& st : stats_) {
    hash = FnvMix(hash, static_cast<uint64_t>(st.delivered));
    hash = FnvMix(hash, static_cast<uint64_t>(st.dropped_queue));
    hash = FnvMix(hash, static_cast<uint64_t>(st.dropped_loss));
    hash = FnvMix(hash, static_cast<uint64_t>(st.dropped_late));
    hash = FnvMix(hash, static_cast<uint64_t>(st.missed_absent));
    hash = FnvMix(hash, static_cast<uint64_t>(st.last_delivery));
  }
  for (int64_t d : delivered_by_tree_) {
    hash = FnvMix(hash, static_cast<uint64_t>(d));
  }
  // The join log in its canonical (time, receiver) order.
  std::vector<JoinRecord> merged;
  for (const auto& log : join_log_) {
    merged.insert(merged.end(), log.begin(), log.end());
  }
  std::sort(merged.begin(), merged.end(), [](const JoinRecord& a, const JoinRecord& b) {
    return a.at != b.at ? a.at < b.at : a.receiver < b.receiver;
  });
  for (const JoinRecord& record : merged) {
    hash = FnvMix(hash, static_cast<uint64_t>(record.at));
    hash = FnvMix(hash, static_cast<uint64_t>(record.receiver));
    hash = FnvMix(hash, static_cast<uint64_t>(record.latency));
  }
  for (const OverlayRepairEvent& e : repair_log_) {
    hash = FnvMix(hash, static_cast<uint64_t>(e.at));
    hash = FnvMix(hash, static_cast<uint64_t>(e.tree));
    hash = FnvMix(hash, static_cast<uint64_t>(e.node));
    hash = FnvMix(hash, static_cast<uint64_t>(e.new_parent));
  }
  hash = FnvMix(hash, static_cast<uint64_t>(repairs_));
  hash = FnvMix(hash, static_cast<uint64_t>(churn_skipped_));
  return hash;
}

ShardedOverlayChurnDriver::ShardedOverlayChurnDriver(ShardSet* shards,
                                                     ShardedOverlayMulticast* multicast,
                                                     FaultPlan plan)
    : shards_(shards), multicast_(multicast), plan_(std::move(plan)) {
  plan_.Normalize();
}

void ShardedOverlayChurnDriver::Start() {
  const Time now = shards_->now();
  for (const FaultEvent& event : plan_.events) {
    if (event.kind != FaultKind::kChurn) {
      ++ignored_;
      continue;
    }
    ShardedOverlayMulticast* mc = multicast_;
    const int target = event.target;
    shards_->PostGlobal(std::max(now, event.at),
                        TimerCallback([mc, target] { mc->Leave(target); }));
    ++departures_;
    if (event.duration > 0) {
      shards_->PostGlobal(std::max(now, event.at + event.duration),
                          TimerCallback([mc, target] { mc->Join(target); }));
      ++rejoins_;
    }
  }
}

}  // namespace pandora
