// ShardedOverlayMulticast: the striped distribution data plane, spanning a
// ShardSet.
//
// OverlayMulticast (multicast.h) runs a whole city on one Scheduler.  This
// variant partitions the receiver population across the set's shards —
// receiver r lives on shard r % shards — and keeps the exact same overlay
// semantics:
//
//  * A relay executes on the PARENT's shard (the paper's switch duplicates
//    copies where the stream is): lane serialization and the queue-budget
//    drop decision read and write only parent-owned state.
//  * A delivery executes on the CHILD's shard.  Same-shard hops arm a plain
//    timer; cross-shard hops ride the ShardSet mailbox at depart + access
//    latency, which satisfies the lookahead contract because every access
//    link's latency is >= the set's lookahead (checked at construction —
//    the overlay's link latencies ARE the conservative-sync slack).
//  * Drop accounting belongs to the child.  A parent-side drop (queue shed,
//    link loss, absent child) on a cross-shard edge posts a notice that
//    charges the child's counters on the child's own shard, so every
//    per-receiver counter keeps a single writer.
//
// Loss draws are STATELESS: instead of one generator consumed in event
// order (whose stream would depend on how receivers interleave across
// shards), each (tree, child, seq) copy hashes to its own uniform draw.
// Every per-receiver outcome is therefore independent of the partition; the
// aggregate RunHash folds state in receiver order plus a time-sorted join
// log, so one seed yields one hash across thread counts.
//
// Churn is control-plane: Leave/Join/repair mutate the shared StripedTrees,
// which the data plane reads during windows, so the churn driver runs every
// event as a ShardSet::PostGlobal stop-the-world callback (workers parked,
// all clocks at the event's instant) — the overlay twin of the fault
// driver's spanning mode.
#ifndef PANDORA_SRC_OVERLAY_SHARDED_H_
#define PANDORA_SRC_OVERLAY_SHARDED_H_

#include <cstdint>
#include <vector>

#include "src/fault/plan.h"
#include "src/overlay/multicast.h"
#include "src/overlay/repair.h"
#include "src/overlay/topology.h"
#include "src/overlay/tree.h"
#include "src/runtime/scheduler.h"
#include "src/runtime/shard_set.h"

namespace pandora {

class ShardedOverlayMulticast {
 public:
  // `trees` must outlive the multicast and is mutated only at stop-the-world
  // instants (Leave/Join/repair).  With a one-shard set this degenerates to
  // the single-engine data plane (every hop is same-shard).
  ShardedOverlayMulticast(ShardSet* shards, const OverlayTopology* topology, StripedTrees* trees,
                          MulticastParams params, uint64_t seed);

  // Arms the source cadence on shard 0; segments are emitted every interval
  // until `emit_until`.  Every receiver present at start has its join clock
  // running from the current instant.
  void Start(Time emit_until);

  // Churn entry points.  Must run at a stop-the-world instant: from the
  // coordinator between Run* calls, or inside a PostGlobal callback (the
  // ShardedOverlayChurnDriver).  They mutate the shared trees.
  void Leave(int r);
  void Join(int r);

  int shard_of(int r) const { return r % shards_->shard_count(); }

  // --- Observability (coordinator-side: between Run* calls) -----------------

  int64_t emitted() const { return next_seq_; }
  int64_t emitted_on_tree(int t) const { return emitted_by_tree_[static_cast<size_t>(t)]; }
  const OverlayReceiverStats& stats(int r) const { return stats_[static_cast<size_t>(r)]; }
  int64_t delivered_on_tree(int r, int t) const {
    return delivered_by_tree_[static_cast<size_t>(r) * static_cast<size_t>(trees_->stripes) +
                              static_cast<size_t>(t)];
  }
  int64_t repairs() const { return repairs_; }
  int64_t churn_skipped() const { return churn_skipped_; }
  const std::vector<OverlayRepairEvent>& repair_log() const { return repair_log_; }
  const TreeRepair& repair() const { return repair_; }

  // Join-to-first-segment latencies, merged across shards and sorted by
  // (completion time, receiver) — a canonical order no partition perturbs.
  std::vector<Duration> JoinLatencies() const;

  // FNV-1a over every observable outcome, folded in receiver order (and the
  // canonical join order above): equal across thread counts by the window
  // determinism argument, and across shard counts because no draw or
  // counter depends on cross-receiver event interleaving.
  uint64_t RunHash() const;

 private:
  // A completed join clock: receiver and the instant/latency of its first
  // delivery.  Logged per shard (each appended only by its owner), merged
  // at observation time.
  struct JoinRecord {
    Time at = 0;
    int receiver = 0;
    Duration latency = 0;
  };
  enum DropKind : int { kDropQueue = 0, kDropLoss = 1, kDropAbsent = 2 };

  void Emit();
  void Deliver(int tree, int node, int64_t seq);
  // Relays one copy from `parent` (kOverlaySource for the root) toward
  // `child`; runs on the parent's shard.
  void RelayTo(int tree, int parent, int child, int64_t seq);
  // Charges a parent-side drop to the child, on the child's shard.
  void CountDrop(int child, int kind);
  void RepairNow(int r);
  // Stateless per-copy loss draw — a pure function of (seed, tree, child,
  // seq), independent of event order and shard layout.
  bool LossDraw(int tree, int child, int64_t seq, double loss_rate) const;
  Scheduler* sched_of(int r) { return scheds_[static_cast<size_t>(shard_of(r))]; }
  Time& lane_busy(int tree, int node) {
    return lane_busy_[static_cast<size_t>(node) * static_cast<size_t>(trees_->stripes) +
                      static_cast<size_t>(tree)];
  }

  ShardSet* shards_;
  std::vector<Scheduler*> scheds_;  // scheds_[s] == &shards_->shard(s)
  const OverlayTopology* topology_;
  StripedTrees* trees_;
  MulticastParams params_;
  TreeRepair repair_;
  uint64_t seed_;

  int64_t next_seq_ = 0;  // written only by shard 0's Emit chain
  Time emit_until_ = 0;
  std::vector<int64_t> emitted_by_tree_;
  // Per-receiver state: indexed by receiver id, written only by the owning
  // shard during windows (or by the coordinator stop-the-world).
  std::vector<OverlayReceiverStats> stats_;
  std::vector<int64_t> delivered_by_tree_;  // [r * stripes + t]
  std::vector<int64_t> last_played_seq_;    // [r * stripes + t]
  std::vector<Time> lane_busy_;             // [r * stripes + t]
  std::vector<Duration> lane_service_;      // per receiver: us per copy per lane
  std::vector<Time> join_time_;
  std::vector<uint8_t> awaiting_first_;
  // Per-shard completed-join logs (outer index = shard; single writer).
  std::vector<std::vector<JoinRecord>> join_log_;
  std::vector<TraceSiteId> join_hist_sites_;  // per shard (per-recorder ids)
  // Control-plane state: coordinator-only.
  std::vector<OverlayRepairEvent> repair_log_;
  int64_t repairs_ = 0;
  int64_t churn_skipped_ = 0;
};

// Applies FaultPlan churn to a ShardedOverlayMulticast.  Every leave/rejoin
// is armed as a PostGlobal stop-the-world event at Start, in plan order, so
// coincident events replay exactly as listed — the spanning twin of
// OverlayChurnDriver.
class ShardedOverlayChurnDriver {
 public:
  ShardedOverlayChurnDriver(ShardSet* shards, ShardedOverlayMulticast* multicast, FaultPlan plan);

  void Start();

  int64_t departures() const { return departures_; }
  int64_t rejoins() const { return rejoins_; }
  int64_t ignored() const { return ignored_; }

 private:
  ShardSet* shards_;
  ShardedOverlayMulticast* multicast_;
  FaultPlan plan_;
  int64_t departures_ = 0;
  int64_t rejoins_ = 0;
  int64_t ignored_ = 0;
};

}  // namespace pandora

#endif  // PANDORA_SRC_OVERLAY_SHARDED_H_
