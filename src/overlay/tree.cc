#include "src/overlay/tree.h"

#include <algorithm>
#include <deque>
#include <numeric>

#include "src/runtime/check.h"

namespace pandora {
namespace {

// One attach step of the heap-style fill: take the oldest parent with a
// free slot, hang `node` off it.  The (parent, slot) sequence this produces
// depends only on counts and fanout — never on which receiver occupies a
// position — which is what makes the two policies share a shape.
struct FillState {
  std::deque<int> open;  // parents with spare slots; front is oldest
  int fanout = 0;
  std::vector<int>* parent = nullptr;
  std::vector<std::vector<int>>* children = nullptr;
  std::vector<int>* root_children = nullptr;
  std::vector<int> slots_used;  // per receiver; root tracked separately
  int root_slots_used = 0;

  void Attach(int node, bool interior) {
    while (!open.empty()) {
      int head = open.front();
      int used = head == kOverlaySource ? root_slots_used : slots_used[static_cast<size_t>(head)];
      if (used < fanout) {
        break;
      }
      open.pop_front();
    }
    PANDORA_CHECK(!open.empty());
    int p = open.front();
    if (p == kOverlaySource) {
      ++root_slots_used;
      root_children->push_back(node);
    } else {
      ++slots_used[static_cast<size_t>(p)];
      (*children)[static_cast<size_t>(p)].push_back(node);
    }
    (*parent)[static_cast<size_t>(node)] = p;
    if (interior) {
      open.push_back(node);
    }
  }
};

}  // namespace

StripedTrees TreeBuilder::Build(const OverlayTopology& topology, int stripes, TreePolicy policy) {
  const int n = topology.receiver_count();
  PANDORA_CHECK(n > 0);
  PANDORA_CHECK(stripes >= 1);
  const int fanout = topology.params.fanout;

  StripedTrees trees;
  trees.stripes = stripes;
  trees.fanout = fanout;
  trees.policy = policy;
  trees.parent.assign(static_cast<size_t>(stripes), std::vector<int>(static_cast<size_t>(n), kOverlayDetached));
  trees.children.assign(static_cast<size_t>(stripes),
                        std::vector<std::vector<int>>(static_cast<size_t>(n)));
  trees.root_children.assign(static_cast<size_t>(stripes), {});

  for (int t = 0; t < stripes; ++t) {
    // Interior group t relays; everyone else is a leaf in this tree.
    std::vector<int> interior;
    std::vector<int> leaves;
    for (int r = 0; r < n; ++r) {
      (r % stripes == t ? interior : leaves).push_back(r);
    }
    // Capacity: every receiver needs a slot, and only the source plus the
    // interior group supply them.
    PANDORA_CHECK(static_cast<int64_t>(fanout) * (static_cast<int64_t>(interior.size()) + 1) >=
                  n);
    if (policy == TreePolicy::kNearOptimalDelay) {
      std::stable_sort(interior.begin(), interior.end(), [&](int a, int b) {
        return topology.links[static_cast<size_t>(a)].latency <
               topology.links[static_cast<size_t>(b)].latency;
      });
    }

    FillState fill;
    fill.fanout = fanout;
    fill.parent = &trees.parent[static_cast<size_t>(t)];
    fill.children = &trees.children[static_cast<size_t>(t)];
    fill.root_children = &trees.root_children[static_cast<size_t>(t)];
    fill.slots_used.assign(static_cast<size_t>(n), 0);
    fill.open.push_back(kOverlaySource);
    // Interiors first (they open slots as they land), then the leaves.
    for (int r : interior) {
      fill.Attach(r, /*interior=*/true);
    }
    for (int r : leaves) {
      fill.Attach(r, /*interior=*/false);
    }
  }
  return trees;
}

bool SpansAll(const StripedTrees& trees) {
  const int n = trees.receiver_count();
  for (int t = 0; t < trees.stripes; ++t) {
    for (int r = 0; r < n; ++r) {
      if (trees.absent(r)) {
        continue;
      }
      int hops = 0;
      int at = r;
      while (at != kOverlaySource) {
        if (at == kOverlayDetached || ++hops > n) {
          return false;
        }
        at = trees.parent[static_cast<size_t>(t)][static_cast<size_t>(at)];
      }
    }
  }
  return true;
}

bool InteriorDisjoint(const StripedTrees& trees) {
  const int n = trees.receiver_count();
  for (int t = 0; t < trees.stripes; ++t) {
    for (int r = 0; r < n; ++r) {
      if (!trees.children[static_cast<size_t>(t)][static_cast<size_t>(r)].empty() &&
          trees.interior_tree(r) != t) {
        return false;
      }
    }
  }
  return true;
}

bool RespectsFanout(const StripedTrees& trees) {
  const int n = trees.receiver_count();
  for (int t = 0; t < trees.stripes; ++t) {
    if (static_cast<int>(trees.root_children[static_cast<size_t>(t)].size()) > trees.fanout) {
      return false;
    }
    for (int r = 0; r < n; ++r) {
      if (static_cast<int>(trees.children[static_cast<size_t>(t)][static_cast<size_t>(r)].size()) >
          trees.fanout) {
        return false;
      }
    }
  }
  return true;
}

bool IsAcyclic(const StripedTrees& trees) {
  const int n = trees.receiver_count();
  for (int t = 0; t < trees.stripes; ++t) {
    for (int r = 0; r < n; ++r) {
      int hops = 0;
      int at = r;
      while (at != kOverlaySource && at != kOverlayDetached) {
        if (++hops > n) {
          return false;
        }
        at = trees.parent[static_cast<size_t>(t)][static_cast<size_t>(at)];
      }
    }
  }
  return true;
}

DelayStats ComputeDelayStats(const OverlayTopology& topology, const StripedTrees& trees) {
  const int n = trees.receiver_count();
  DelayStats stats;
  int64_t samples = 0;
  double sum = 0.0;
  std::vector<Duration> delay(static_cast<size_t>(n), 0);
  for (int t = 0; t < trees.stripes; ++t) {
    // Children always attach after their parent in Build, but churn can
    // reorder ids arbitrarily, so walk breadth-first from the roots.
    std::deque<int> frontier;
    for (int r : trees.root_children[static_cast<size_t>(t)]) {
      delay[static_cast<size_t>(r)] = topology.links[static_cast<size_t>(r)].latency;
      frontier.push_back(r);
    }
    while (!frontier.empty()) {
      int at = frontier.front();
      frontier.pop_front();
      const Duration d = delay[static_cast<size_t>(at)];
      sum += static_cast<double>(d);
      stats.max_us = std::max(stats.max_us, d);
      ++samples;
      for (int c : trees.children[static_cast<size_t>(t)][static_cast<size_t>(at)]) {
        delay[static_cast<size_t>(c)] = d + topology.links[static_cast<size_t>(c)].latency;
        frontier.push_back(c);
      }
    }
  }
  stats.mean_us = samples > 0 ? sum / static_cast<double>(samples) : 0.0;
  return stats;
}

}  // namespace pandora
