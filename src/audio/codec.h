// Simulated 8kHz u-law codec: capture and playout sides (section 3.5).
//
// Capture: "The 125us samples from the codec are written continuously into
// a byte-wide fifo.  Every 2ms, the Transputer event pin is signalled, and
// the code notes that another 16 bytes (a block) are in the fifo."
// CodecInput reproduces this: every 2ms of local codec time it emits one
// AudioBlock timestamped with the time of its first sample.
//
// Playout: CodecOutput holds a short fifo ahead of the loudspeaker; it
// primes to `prime_blocks` before starting (the paper attributes 4ms of the
// 8ms best-case one-way trip to "the buffering to the codec") and then
// consumes one block every 2ms, playing silence on underrun.
//
// Both sides run on their own quartz clock: `clock_drift` scales the local
// tick (the paper quotes 1-in-1e5 oscillators, the drift the clawback rate
// must dominate).
#ifndef PANDORA_SRC_AUDIO_CODEC_H_
#define PANDORA_SRC_AUDIO_CODEC_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/audio/signal.h"
#include "src/runtime/channel.h"
#include "src/runtime/scheduler.h"
#include "src/runtime/stats.h"
#include "src/segment/audio_block.h"

namespace pandora {

struct CodecInputConfig {
  std::string name = "codec.in";
  double clock_drift = 0.0;  // fractional: +1e-5 = fast source clock
};

class CodecInput {
 public:
  // Captured blocks are sent (rendezvous) into `out`; back pressure from a
  // wedged downstream stalls capture, exactly as a full hardware fifo would.
  CodecInput(Scheduler* sched, CodecInputConfig config, SampleSource* source,
             Channel<AudioBlock>* out);

  void Start();
  void Stop() { running_ = false; }

  // Fault hook: steps the local quartz (the tick length is recomputed every
  // block, so the new drift takes effect from the next capture).
  void SetClockDrift(double drift) { config_.clock_drift = drift; }
  double clock_drift() const { return config_.clock_drift; }

  uint64_t blocks_captured() const { return blocks_captured_; }

 private:
  Process Run();

  Scheduler* sched_;
  CodecInputConfig config_;
  SampleSource* source_;
  Channel<AudioBlock>* out_;
  bool running_ = true;
  bool started_ = false;
  uint64_t blocks_captured_ = 0;
};

struct CodecOutputConfig {
  std::string name = "codec.out";
  double clock_drift = 0.0;
  // Blocks buffered ahead of the loudspeaker before playout starts (4ms).
  int prime_blocks = 2;
  // Fifo bound; overflow drops the oldest block (keeps latency bounded).
  size_t max_fifo_blocks = 64;
  // Record every played sample (memory-heavy; for SNR tests/benches).
  bool record_samples = false;
};

class CodecOutput {
 public:
  CodecOutput(Scheduler* sched, CodecOutputConfig config);

  void Start();

  // Non-blocking submission from the mixer.
  void SubmitBlock(const AudioBlock& block);

  // Fault hook: steps the playout quartz (next tick onward).
  void SetClockDrift(double drift) { config_.clock_drift = drift; }

  uint64_t played_blocks() const { return played_blocks_; }
  uint64_t underruns() const { return underruns_; }
  uint64_t overflow_drops() const { return overflow_drops_; }
  size_t fifo_depth() const { return fifo_.size(); }

  // Per-block playout latency (play time minus source time), microseconds.
  const StatAccumulator& latency() const { return latency_; }

  const std::vector<PlayedSample>& recorded() const { return recorded_; }

 private:
  Process Run();

  Scheduler* sched_;
  CodecOutputConfig config_;
  std::deque<AudioBlock> fifo_;
  bool primed_ = false;
  bool started_ = false;
  uint64_t played_blocks_ = 0;
  uint64_t underruns_ = 0;
  uint64_t overflow_drops_ = 0;
  StatAccumulator latency_;
  std::vector<PlayedSample> recorded_;
};

}  // namespace pandora

#endif  // PANDORA_SRC_AUDIO_CODEC_H_
