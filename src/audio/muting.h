// Two-stage muting for hands-free echo suppression (section 4.3, fig 4.1).
//
// "The data stream to the loudspeaker is monitored for samples exceeding a
// threshold level.  When the level is exceeded, the data stream from the
// microphone is muted in two stages, and returned to full volume after a
// sufficient time for any room reverberations to die away."
//
// Default profile (fig 4.1): on the first loud speaker block the factor
// steps 100% -> 50% for one 2ms block, then 20%; it stays at 20% until the
// speaker has been quiet for 22ms (sound travels ~22 feet), then 50% for a
// further 22ms of quiet, then back to 100%.  The two-stage steps avoid
// audible clicks.  "The threshold, muting factors and delay times are all
// dynamically alterable."
//
// "The muting is performed by lookup tables that directly scale the 8-bit
// u-law samples" — MutingTable precomputes a 256-byte u-law -> u-law map
// per factor.
#ifndef PANDORA_SRC_AUDIO_MUTING_H_
#define PANDORA_SRC_AUDIO_MUTING_H_

#include <array>
#include <cstdint>

#include "src/runtime/time.h"
#include "src/segment/audio_block.h"

namespace pandora {

// A u-law -> u-law scaling table for one gain factor.
class MutingTable {
 public:
  explicit MutingTable(double factor);

  uint8_t Apply(uint8_t ulaw) const { return table_[ulaw]; }
  void ApplyToBlock(AudioBlock* block) const {
    for (uint8_t& sample : block->samples) {
      sample = table_[sample];
    }
  }
  double factor() const { return factor_; }

 private:
  double factor_;
  std::array<uint8_t, 256> table_{};
};

struct MutingConfig {
  bool enabled = true;
  // Linear magnitude above which a loudspeaker sample counts as loud.
  int16_t threshold = 2000;
  // Duration of the intermediate 50% step on the way down.
  Duration attack_step = Millis(2);
  // Quiet time at 20% before easing to 50% ("about 22 feet").
  Duration deep_hold = Millis(22);
  // Quiet time at 50% before returning to 100% (reverberation decay).
  Duration release_hold = Millis(22);
  double half_factor = 0.5;
  double deep_factor = 0.2;
};

// The muting state machine.  The mixer feeds it every loudspeaker block
// (ObserveSpeakerBlock); the microphone path scales its blocks through
// ApplyToMicBlock.  Detection happens before the speaker samples reach the
// codec input fifo and muting after the mic samples leave the codec output
// fifo, so the paper's >=4ms reaction margin holds by construction.
class MutingControl {
 public:
  explicit MutingControl(const MutingConfig& config = MutingConfig());

  // Reconfigure on the fly (kSetMuting command).
  void Configure(const MutingConfig& config);

  // Examines one block headed for the loudspeaker at local time `now`.
  void ObserveSpeakerBlock(Time now, const AudioBlock& block);

  // Scales one microphone block by the current factor.
  void ApplyToMicBlock(Time now, AudioBlock* block);

  // Current gain factor at `now` (advances the state machine).
  double FactorAt(Time now);

  uint64_t activations() const { return activations_; }
  const MutingConfig& config() const { return config_; }

 private:
  enum class State { kFull, kAttack, kDeep, kRelease };

  void Advance(Time now);
  bool BlockIsLoud(const AudioBlock& block) const;

  MutingConfig config_;
  MutingTable full_table_;
  MutingTable half_table_;
  MutingTable deep_table_;

  State state_ = State::kFull;
  Time state_entered_ = 0;
  Time last_loud_ = -1;
  uint64_t activations_ = 0;
};

}  // namespace pandora

#endif  // PANDORA_SRC_AUDIO_MUTING_H_
