#include "src/audio/receiver.h"

#include "src/runtime/check.h"
#include "src/segment/audio_block.h"

namespace pandora {

AudioReceiver::AudioReceiver(Scheduler* sched, AudioReceiverOptions options,
                             Channel<SegmentRef>* segments_in, ClawbackBank* bank, CpuModel* cpu,
                             ReportSink* report_sink)
    : sched_(sched),
      options_(std::move(options)),
      segments_in_(segments_in),
      bank_(bank),
      cpu_(cpu),
      reporter_(sched, report_sink, options_.name) {}

void AudioReceiver::Start(Priority priority) {
  PANDORA_CHECK(!started_);
  started_ = true;
  sched_->Spawn(Run(), options_.name, priority);
}

uint64_t AudioReceiver::total_missing() const {
  uint64_t total = 0;
  for (const auto& [stream, tracker] : trackers_) {
    total += tracker.missing_total();
  }
  return total;
}

Process AudioReceiver::Run() {
  for (;;) {
    SegmentRef ref = co_await segments_in_->Receive();
    if (cpu_ != nullptr) {
      co_await cpu_->Consume(options_.costs.segment_handling);
    }
    ++segments_received_;

    const Segment& segment = *ref;
    auto observation = trackers_[segment.stream].Observe(segment.header.sequence);
    if (observation.outcome == SequenceTracker::Outcome::kGap) {
      // "the destination can detect that segments are missing as soon as a
      // later one arrives" — the mixer's recovery (silence or replay) fills
      // the hole; here we just account and report.
      reporter_.Report("receiver.gap", ReportSeverity::kWarning,
                       "missing segments on stream " + std::to_string(segment.stream),
                       static_cast<int64_t>(observation.missing));
    } else if (observation.outcome == SequenceTracker::Outcome::kDuplicate ||
               observation.outcome == SequenceTracker::Outcome::kStale) {
      continue;  // already played or unplayably late: discard
    } else if (observation.outcome == SequenceTracker::Outcome::kSuspect) {
      // Implausible sequence jump — most likely a bit flip in the header
      // (the wire format carries no checksum).  The tracker kept its
      // expectation, so the stream survives; drop the damaged segment.
      reporter_.Report("receiver.suspect", ReportSeverity::kWarning,
                       "implausible sequence jump on stream " + std::to_string(segment.stream),
                       static_cast<int64_t>(segment.header.sequence));
      continue;
    }

    for (const AudioBlock& block : SplitIntoBlocks(segment)) {
      ClawbackPushResult result = bank_->Push(segment.stream, block);
      if (result == ClawbackPushResult::kStored) {
        ++blocks_delivered_;
      } else {
        ++blocks_rejected_;
      }
    }
  }
}

}  // namespace pandora
