// G.711 mu-law companding — the "standard 8-bit u-law codec" of section 3.2.
//
// Pandora moves audio as 8-bit u-law bytes end to end; linear conversion
// happens only where arithmetic is needed (mixing, muting tables, quality
// metrics).
#ifndef PANDORA_SRC_AUDIO_ULAW_H_
#define PANDORA_SRC_AUDIO_ULAW_H_

#include <cstdint>

namespace pandora {

// Encodes a 16-bit linear PCM sample to 8-bit mu-law.
uint8_t ULawEncode(int16_t linear);

// Decodes an 8-bit mu-law byte to 16-bit linear PCM.
int16_t ULawDecode(uint8_t ulaw);

// The mu-law byte for digital silence (linear 0).
inline constexpr uint8_t kULawSilence = 0xFF;

}  // namespace pandora

#endif  // PANDORA_SRC_AUDIO_ULAW_H_
