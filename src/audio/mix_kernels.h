// Separable audio-mix kernels over contiguous sample blocks (DESIGN.md §15).
//
// The mixer's original inner loop interleaved µ-law decode, widening add,
// clamp and µ-law encode per sample — a branchy scalar chain the compiler
// cannot vectorize.  These kernels split the tick into four passes over
// contiguous arrays:
//
//   1. ULawDecodeBlock   µ-law byte -> linear int16   (table gather, scalar)
//   2. AccumulateBlock   acc[i] += linear[i]          (vectorizes)
//   3. ClampBlock        saturate int32 -> int16      (vectorizes)
//   4. ULawEncodeBlock   linear int16 -> µ-law byte   (table gather, scalar)
//
// Vectorization contract: with GCC 12 at -O2 (which enables the very-cheap
// vectorizer), the compile-time trip count N lets passes 2 and 3 collapse
// to straight-line SLP-vectorized code; the table passes are gathers and
// stay scalar by design (x86-64 baseline has no byte/word gather).  CI
// compiles tests/vectorize_check.cc with -fopt-info-vec-optimized and fails
// if the vector report for the two arithmetic passes disappears.
//
// The companding tables are computed at compile time from the same G.711
// algorithm as src/audio/ulaw.cc; audio_test.cc proves both directions
// equivalent over the full input domain (256 decode, 65536 encode inputs).
#ifndef PANDORA_SRC_AUDIO_MIX_KERNELS_H_
#define PANDORA_SRC_AUDIO_MIX_KERNELS_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace pandora {

namespace mix_internal {

inline constexpr int kBias = 0x84;  // must match src/audio/ulaw.cc
inline constexpr int kClip = 32635;

constexpr int16_t DecodeOne(uint8_t ulaw) {
  const int value = ~ulaw & 0xFF;
  const int sign = value & 0x80;
  const int exponent = (value >> 4) & 0x07;
  const int mantissa = value & 0x0F;
  int sample = ((mantissa << 3) + kBias) << exponent;
  sample -= kBias;
  return static_cast<int16_t>(sign != 0 ? -sample : sample);
}

constexpr uint8_t EncodeOne(int16_t linear) {
  int sample = linear;
  const int sign = (sample >> 8) & 0x80;
  if (sign != 0) {
    sample = -sample;
  }
  if (sample > kClip) {
    sample = kClip;
  }
  sample += kBias;
  int exponent = 7;
  for (int mask = 0x4000; (sample & mask) == 0 && exponent > 0; mask >>= 1) {
    --exponent;
  }
  const int mantissa = (sample >> (exponent + 3)) & 0x0F;
  return static_cast<uint8_t>(~(sign | (exponent << 4) | mantissa));
}

constexpr std::array<int16_t, 256> BuildDecodeTable() {
  std::array<int16_t, 256> table{};
  for (int i = 0; i < 256; ++i) {
    table[static_cast<size_t>(i)] = DecodeOne(static_cast<uint8_t>(i));
  }
  return table;
}

constexpr std::array<uint8_t, 65536> BuildEncodeTable() {
  std::array<uint8_t, 65536> table{};
  for (int i = 0; i < 65536; ++i) {
    // Index by the sample's uint16 bit pattern so a cast is the only
    // arithmetic on the lookup path.
    table[static_cast<size_t>(i)] = EncodeOne(static_cast<int16_t>(static_cast<uint16_t>(i)));
  }
  return table;
}

}  // namespace mix_internal

// 256-entry µ-law -> linear table (512 bytes, always cache-resident).
inline constexpr std::array<int16_t, 256> kULawDecodeTable = mix_internal::BuildDecodeTable();

// 64 KiB linear -> µ-law table, indexed by the int16 bit pattern.  Replaces
// the per-sample exponent-search loop of ULawEncode with one load.
inline constexpr std::array<uint8_t, 65536> kULawEncodeTable = mix_internal::BuildEncodeTable();

// Pass 1: µ-law bytes -> linear samples (table gather).
template <int N>
inline void ULawDecodeBlock(const uint8_t* __restrict__ ulaw, int16_t* __restrict__ linear) {
  for (int i = 0; i < N; ++i) {
    linear[i] = kULawDecodeTable[ulaw[i]];
  }
}

// Pass 2: widening sum into the mix accumulator.  Vectorizes (SLP).
template <int N>
inline void AccumulateBlock(const int16_t* __restrict__ linear, int32_t* __restrict__ acc) {
  for (int i = 0; i < N; ++i) {
    acc[i] += linear[i];
  }
}

// Pass 3: clamp-saturate the accumulator back to the int16 range.
// Vectorizes (SLP: packs with saturation).
template <int N>
inline void ClampBlock(const int32_t* __restrict__ acc, int16_t* __restrict__ out) {
  for (int i = 0; i < N; ++i) {
    const int32_t v = acc[i];
    out[i] = static_cast<int16_t>(v < -32768 ? -32768 : (v > 32767 ? 32767 : v));
  }
}

// Pass 4: linear samples -> µ-law bytes (table gather).
template <int N>
inline void ULawEncodeBlock(const int16_t* __restrict__ linear, uint8_t* __restrict__ out) {
  for (int i = 0; i < N; ++i) {
    out[i] = kULawEncodeTable[static_cast<uint16_t>(linear[i])];
  }
}

}  // namespace pandora

#endif  // PANDORA_SRC_AUDIO_MIX_KERNELS_H_
