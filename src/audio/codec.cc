#include "src/audio/codec.h"

#include <cmath>

#include "src/audio/ulaw.h"
#include "src/runtime/check.h"

namespace pandora {
namespace {

Time RoundTime(double t) { return static_cast<Time>(std::llround(t)); }

}  // namespace

CodecInput::CodecInput(Scheduler* sched, CodecInputConfig config, SampleSource* source,
                       Channel<AudioBlock>* out)
    : sched_(sched), config_(std::move(config)), source_(source), out_(out) {}

void CodecInput::Start() {
  PANDORA_CHECK(!started_);
  started_ = true;
  sched_->Spawn(Run(), config_.name, Priority::kHigh);
}

Process CodecInput::Run() {
  // Local codec time advances at (1 + drift) of simulated world time; the
  // double accumulator keeps sub-microsecond drift from rounding away.
  const double tick = ToSeconds(kAudioBlockDuration) * 1e6 / (1.0 + config_.clock_drift);
  double window_start = static_cast<double>(sched_->now());
  while (running_) {
    // The block becomes available when its last sample has been written to
    // the fifo: the end of the 2ms window.
    double window_end = window_start + tick;
    co_await sched_->WaitUntil(RoundTime(window_end));

    AudioBlock block;
    block.source_time = RoundTime(window_start);
    const double sample_tick = tick / kAudioBlockSamples;
    for (int i = 0; i < kAudioBlockSamples; ++i) {
      Time sample_time = RoundTime(window_start + i * sample_tick);
      block.samples[static_cast<size_t>(i)] = ULawEncode(source_->SampleAt(sample_time));
    }
    ++blocks_captured_;
    co_await out_->Send(block);
    window_start = window_end;
  }
}

CodecOutput::CodecOutput(Scheduler* sched, CodecOutputConfig config)
    : sched_(sched), config_(std::move(config)) {}

void CodecOutput::Start() {
  PANDORA_CHECK(!started_);
  started_ = true;
  sched_->Spawn(Run(), config_.name, Priority::kHigh);
}

void CodecOutput::SubmitBlock(const AudioBlock& block) {
  if (fifo_.size() >= config_.max_fifo_blocks) {
    fifo_.pop_front();
    ++overflow_drops_;
  }
  fifo_.push_back(block);
}

Process CodecOutput::Run() {
  const double tick = ToSeconds(kAudioBlockDuration) * 1e6 / (1.0 + config_.clock_drift);
  double next = static_cast<double>(sched_->now()) + tick;
  for (;;) {
    co_await sched_->WaitUntil(RoundTime(next));
    next += tick;

    if (!primed_) {
      if (fifo_.size() < static_cast<size_t>(config_.prime_blocks)) {
        continue;  // still filling the pre-loudspeaker buffer
      }
      primed_ = true;
    }

    Time play_time = sched_->now();
    if (fifo_.empty()) {
      ++underruns_;
      if (config_.record_samples) {
        for (int i = 0; i < kAudioBlockSamples; ++i) {
          recorded_.push_back(
              {play_time + i * kAudioSamplePeriod, kULawSilence});
        }
      }
      continue;
    }
    AudioBlock block = fifo_.front();
    fifo_.pop_front();
    ++played_blocks_;
    latency_.Add(static_cast<double>(play_time - block.source_time));
    if (config_.record_samples) {
      for (int i = 0; i < kAudioBlockSamples; ++i) {
        recorded_.push_back(
            {play_time + i * kAudioSamplePeriod, block.samples[static_cast<size_t>(i)]});
      }
    }
  }
}

}  // namespace pandora
