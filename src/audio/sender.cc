#include "src/audio/sender.h"

#include <algorithm>

#include "src/runtime/check.h"

namespace pandora {

AudioSender::AudioSender(Scheduler* sched, AudioSenderOptions options,
                         Channel<AudioBlock>* blocks_in, BufferPool* pool,
                         Channel<SegmentRef>* segments_out, CpuModel* cpu, MutingControl* muting,
                         ReportSink* report_sink)
    : sched_(sched),
      options_(std::move(options)),
      blocks_in_(blocks_in),
      pool_(pool),
      segments_out_(segments_out),
      cpu_(cpu),
      muting_(muting),
      reporter_(sched, report_sink, options_.name),
      command_(sched, options_.name + ".cmd"),
      producing_(options_.start_immediately),
      blocks_per_segment_(options_.blocks_per_segment) {}

void AudioSender::Start(Priority priority) {
  PANDORA_CHECK(!started_);
  started_ = true;
  sched_->Spawn(Run(), options_.name, priority);
}

void AudioSender::HandleCommand(const Command& command) {
  switch (command.verb) {
    case CommandVerb::kStartStream:
      producing_ = true;
      break;
    case CommandVerb::kStop:
      producing_ = false;
      pending_.clear();
      break;
    case CommandVerb::kSetBlocksPerSegment:
      // "The number of blocks in each outgoing segment can be varied...
      // we can alter this dynamically if the recipient cannot handle the
      // arrival rate (perhaps using 12 blocks = 24ms) or if we want a
      // particularly low latency (1 block = 2ms)."
      blocks_per_segment_ = static_cast<int>(
          std::clamp<int64_t>(command.arg0, kMinBlocksPerSegment, kMaxBlocksPerSegment));
      break;
    case CommandVerb::kReportStatus:
      reporter_.ReportNow("sender.status", ReportSeverity::kInfo,
                          "segments=" + std::to_string(segments_sent_) +
                              " blocks_per_segment=" + std::to_string(blocks_per_segment_),
                          static_cast<int64_t>(segments_sent_));
      break;
    default:
      break;
  }
}

Task<void> AudioSender::EmitSegment() {
  if (cpu_ != nullptr) {
    co_await cpu_->Consume(options_.costs.segment_handling + options_.costs.outgoing_stream);
  }
  // Obtaining the buffer can park us when the pool is starved — the paper's
  // deliberate back-pressure path.
  SegmentRef ref = co_await pool_->Allocate();
  *ref = MakeAudioSegment(options_.stream, sequence_++, pending_start_, std::move(pending_));
  pending_ = std::vector<uint8_t>();
  ++segments_sent_;
  co_await segments_out_->Send(std::move(ref));
}

Process AudioSender::Run() {
  for (;;) {
    Alt alt(sched_);
    alt.OnReceive(command_);     // principle 4
    alt.OnReceive(*blocks_in_);  // codec blocks
    int chosen = co_await alt.Select();
    if (chosen == 0) {
      Command command = co_await command_.Receive();
      HandleCommand(command);
      continue;
    }
    AudioBlock block = co_await blocks_in_->Receive();
    if (!producing_) {
      continue;  // stream not started: codec data is discarded at source
    }
    if (muting_ != nullptr) {
      muting_->ApplyToMicBlock(sched_->now(), &block);
    }
    if (pending_.empty()) {
      pending_start_ = block.source_time;
    }
    pending_.insert(pending_.end(), block.samples.begin(), block.samples.end());
    ++blocks_consumed_;
    if (pending_.size() >=
        static_cast<size_t>(blocks_per_segment_) * static_cast<size_t>(kAudioBlockBytes)) {
      co_await EmitSegment();
    }
  }
}

}  // namespace pandora
