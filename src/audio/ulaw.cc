#include "src/audio/ulaw.h"

namespace pandora {
namespace {

constexpr int kBias = 0x84;  // 132
constexpr int kClip = 32635;

}  // namespace

uint8_t ULawEncode(int16_t linear) {
  int sample = linear;
  int sign = (sample >> 8) & 0x80;
  if (sign != 0) {
    sample = -sample;
  }
  if (sample > kClip) {
    sample = kClip;
  }
  sample += kBias;

  // Position of the highest set bit of the biased magnitude determines the
  // exponent (segment) of the companded value.
  int exponent = 7;
  for (int mask = 0x4000; (sample & mask) == 0 && exponent > 0; mask >>= 1) {
    --exponent;
  }
  int mantissa = (sample >> (exponent + 3)) & 0x0F;
  return static_cast<uint8_t>(~(sign | (exponent << 4) | mantissa));
}

int16_t ULawDecode(uint8_t ulaw) {
  int value = ~ulaw & 0xFF;
  int sign = value & 0x80;
  int exponent = (value >> 4) & 0x07;
  int mantissa = value & 0x0F;
  int sample = ((mantissa << 3) + kBias) << exponent;
  sample -= kBias;
  return static_cast<int16_t>(sign != 0 ? -sample : sample);
}

}  // namespace pandora
