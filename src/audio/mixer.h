// AudioMixer: software real-time mixing of incoming audio streams.
//
// "Their accompanying audio streams are mixed by software in real-time on
// the destination transputer.  No limit is placed on the number of incoming
// streams that can be mixed, save that imposed by system bandwidths and CPU
// resources." (section 2.0).
//
// Every 2ms the mixer reads one block from each stream's clawback buffer
// (fig 3.8), sums them in linear space and re-encodes.  An empty buffer
// means the stream is skipped ("equivalent to inserting 2ms of zero
// amplitude samples") — or, with the replay policy of section 3.8, the last
// block for that stream is repeated ("Replaying the last 2ms block
// occasionally is perfectly acceptable for speech").
//
// CPU costs are charged against the audio board's CpuModel; overload makes
// the mixing tick late, starving the playout fifo — the paper's capacity
// limits (5 plain streams, 3 full-featured) emerge from this, measured by
// bench E4.
#ifndef PANDORA_SRC_AUDIO_MIXER_H_
#define PANDORA_SRC_AUDIO_MIXER_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/audio/codec.h"
#include "src/audio/costs.h"
#include "src/audio/muting.h"
#include "src/buffer/clawback.h"
#include "src/runtime/resource.h"
#include "src/runtime/scheduler.h"
#include "src/runtime/stats.h"

namespace pandora {

// What to do when a stream's clawback buffer is empty at mixing time.
enum class MixRecovery {
  kSilence,     // skip the stream (insert zero amplitude)
  kReplayLast,  // repeat the stream's previous block (section 3.8 default)
};

struct AudioMixerOptions {
  std::string name = "audio.mixer";
  double clock_drift = 0.0;
  bool jitter_correction = true;  // charge clawback CPU per stream
  MixRecovery recovery = MixRecovery::kReplayLast;
  AudioCpuCosts costs;
};

class AudioMixer {
 public:
  AudioMixer(Scheduler* sched, AudioMixerOptions options, ClawbackBank* bank,
             CpuModel* cpu = nullptr, CodecOutput* out = nullptr,
             MutingControl* muting = nullptr);

  void Start();

  // Fault hook: steps the mixing-side quartz (next tick onward).
  void SetClockDrift(double drift) { options_.clock_drift = drift; }

  uint64_t ticks() const { return ticks_; }
  uint64_t late_ticks() const { return late_ticks_; }
  Duration max_lateness() const { return max_lateness_; }
  uint64_t replays() const { return replays_; }
  uint64_t silences() const { return silences_; }
  uint64_t blocks_mixed() const { return blocks_mixed_; }

  // Per-block end-to-end latency observed at the mixer, per stream
  // (mixing time minus the block's source timestamp).
  const StatAccumulator* LatencyFor(StreamId stream) const {
    auto it = latency_.find(stream);
    return it == latency_.end() ? nullptr : &it->second;
  }
  const StatAccumulator& all_latency() const { return all_latency_; }

 private:
  Process Run();

  Scheduler* sched_;
  AudioMixerOptions options_;
  ClawbackBank* bank_;
  CpuModel* cpu_;
  CodecOutput* out_;
  MutingControl* muting_;

  std::map<StreamId, AudioBlock> last_block_;
  std::map<StreamId, StatAccumulator> latency_;
  StatAccumulator all_latency_;
  uint64_t ticks_ = 0;
  uint64_t late_ticks_ = 0;
  Duration max_lateness_ = 0;
  uint64_t replays_ = 0;
  uint64_t silences_ = 0;
  uint64_t blocks_mixed_ = 0;
  bool started_ = false;

  // Telemetry: per-stream end-to-end latency histograms (source to mix,
  // the final hop) and an active-stream counter per tick.
  std::map<StreamId, TraceSiteId> trace_hists_;
  TraceSiteId trace_streams_site_ = 0;
};

}  // namespace pandora

#endif  // PANDORA_SRC_AUDIO_MIXER_H_
