#include "src/audio/mixer.h"

#include <algorithm>
#include <cmath>

#include "src/audio/mix_kernels.h"
#include "src/runtime/check.h"

namespace pandora {

AudioMixer::AudioMixer(Scheduler* sched, AudioMixerOptions options, ClawbackBank* bank,
                       CpuModel* cpu, CodecOutput* out, MutingControl* muting)
    : sched_(sched),
      options_(std::move(options)),
      bank_(bank),
      cpu_(cpu),
      out_(out),
      muting_(muting) {}

void AudioMixer::Start() {
  PANDORA_CHECK(!started_);
  started_ = true;
  // High priority: the output side must win CPU reservations so that back
  // pressure pushes loss toward the sources (section 3.7.1).
  sched_->Spawn(Run(), options_.name, Priority::kHigh);
}

Process AudioMixer::Run() {
  const double tick = ToSeconds(kAudioBlockDuration) * 1e6 / (1.0 + options_.clock_drift);
  double next = static_cast<double>(sched_->now()) + tick;
  for (;;) {
    Time scheduled = static_cast<Time>(std::llround(next));
    next += tick;
    if (sched_->now() < scheduled) {
      co_await sched_->WaitUntil(scheduled);
    }
    ++ticks_;
    // Schedule slip: how far the previous ticks' processing has pushed this
    // tick past its nominal time.  Work *within* the 2ms budget is not slip.
    Duration lateness = sched_->now() - scheduled;
    if (lateness > 0) {
      ++late_ticks_;
      max_lateness_ = std::max(max_lateness_, lateness);
    }

    auto streams = bank_->ActiveStreams();
    PANDORA_TRACE_COUNTER(sched_->trace(), trace_streams_site_, options_.name + ".streams",
                          static_cast<int64_t>(streams.size()));

    if (cpu_ != nullptr) {
      Duration cost =
          options_.costs.mixer_base +
          static_cast<Duration>(streams.size()) *
              (options_.costs.mix_per_stream +
               (options_.jitter_correction ? options_.costs.jitter_correction_per_stream : 0)) +
          (muting_ != nullptr ? options_.costs.muting : 0);
      co_await cpu_->Consume(cost);
    }

    // Separable mix passes over contiguous blocks (mix_kernels.h): per
    // stream, table-decode then a vectorized widening add; after the sum, a
    // vectorized clamp-saturate and a table encode.  Bit-identical to the
    // old fused per-sample loop (audio_test.cc proves the tables match the
    // reference codec over the full domain).
    alignas(16) int32_t accumulator[kAudioBlockSamples] = {};
    alignas(16) int16_t linear[kAudioBlockSamples];
    for (StreamId stream : streams) {
      auto block = bank_->Pop(stream);
      if (!block.has_value()) {
        // Buffer found empty: recover per policy.  (The bank has also
        // deactivated the stream; arriving data re-creates it.)
        auto last = last_block_.find(stream);
        if (options_.recovery == MixRecovery::kReplayLast && last != last_block_.end()) {
          block = last->second;
          ++replays_;
        } else {
          ++silences_;
          continue;
        }
      } else {
        Duration block_latency = sched_->now() - block->source_time;
        latency_[stream].Add(static_cast<double>(block_latency));
        all_latency_.Add(static_cast<double>(block_latency));
        // End-to-end latency keyed by (stream, final hop): source timestamp
        // to mix time at this destination.
        PANDORA_TRACE_HISTOGRAM(sched_->trace(), trace_hists_[stream],
                                options_.name + ".e2e.s" + std::to_string(stream), "us",
                                block_latency);
      }
      ULawDecodeBlock<kAudioBlockSamples>(block->samples.data(), linear);
      AccumulateBlock<kAudioBlockSamples>(linear, accumulator);
      last_block_[stream] = *block;
      ++blocks_mixed_;
    }

    AudioBlock mixed;
    mixed.source_time = scheduled;
    alignas(16) int16_t clamped[kAudioBlockSamples];
    ClampBlock<kAudioBlockSamples>(accumulator, clamped);
    ULawEncodeBlock<kAudioBlockSamples>(clamped, mixed.samples.data());

    if (muting_ != nullptr) {
      // Echo suppression monitors the loudspeaker-bound mix before it
      // reaches the codec input fifo (section 4.3).
      muting_->ObserveSpeakerBlock(sched_->now(), mixed);
    }
    if (out_ != nullptr) {
      out_->SubmitBlock(mixed);
    }
  }
}

}  // namespace pandora
