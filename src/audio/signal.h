// Test-signal sources and audio-quality metrics.
//
// The paper's audio quality findings (section 3.8) are subjective — dropped
// blocks "noticeable in most music, but rarely in speech", frequent replays
// "garbled".  The reproduction substitutes deterministic sources (pure
// tones, a speech-like envelope, solo-violin-like sustained harmonics) and
// objective proxies: discontinuity counts, replay-run statistics and SNR
// against the reference signal.
#ifndef PANDORA_SRC_AUDIO_SIGNAL_H_
#define PANDORA_SRC_AUDIO_SIGNAL_H_

#include <cstdint>
#include <vector>

#include "src/runtime/random.h"
#include "src/runtime/time.h"

namespace pandora {

// Standard microphone source kinds used by boxes and Medusa devices.
enum class MicKind { kSine, kSpeech, kSilence };

// A source of 16-bit linear PCM samples, indexed by source-clock time so
// that the emitted waveform is a pure function of time (alignment for SNR).
class SampleSource {
 public:
  virtual ~SampleSource() = default;
  virtual int16_t SampleAt(Time t) = 0;
};

class SilenceSource : public SampleSource {
 public:
  int16_t SampleAt(Time /*t*/) override { return 0; }
};

// Pure tone.  A sustained sine is the paper's "solo violin" worst case for
// hearing periodic sample drops.
class SineSource : public SampleSource {
 public:
  SineSource(double frequency_hz, double amplitude = 8000.0)
      : frequency_hz_(frequency_hz), amplitude_(amplitude) {}

  int16_t SampleAt(Time t) override;

 private:
  double frequency_hz_;
  double amplitude_;
};

// Speech-like: harmonics under a syllable-rate envelope with pauses, so
// muting and loss tests see realistic talk/silence alternation.
class SpeechLikeSource : public SampleSource {
 public:
  explicit SpeechLikeSource(double amplitude = 9000.0, double syllable_hz = 4.0,
                            double talk_fraction = 0.65)
      : amplitude_(amplitude), syllable_hz_(syllable_hz), talk_fraction_(talk_fraction) {}

  int16_t SampleAt(Time t) override;

 private:
  double amplitude_;
  double syllable_hz_;
  double talk_fraction_;
};

// A ramp whose value encodes its own sample index (mod alphabet); lets
// tests account for every individual sample.
class CounterSource : public SampleSource {
 public:
  int16_t SampleAt(Time t) override {
    return static_cast<int16_t>(((t / kAudioSamplePeriodForCounter) % 200) * 100 - 10000);
  }

 private:
  static constexpr Time kAudioSamplePeriodForCounter = 125;
};

// --- Quality metrics --------------------------------------------------------

// A played sample with the destination-clock time it hit the loudspeaker.
struct PlayedSample {
  Time when = 0;
  uint8_t ulaw = 0;
};

// Signal-to-noise ratio (dB) of `played` against the reference waveform the
// source would have produced for the matching source-time window.
// `latency` is subtracted so that steady delay is not scored as noise.
double ComputeSnrDb(SampleSource* reference, const std::vector<PlayedSample>& played,
                    Duration latency);

struct ContinuityStats {
  uint64_t samples = 0;
  uint64_t silence_insertions = 0;  // zero-fill events (underrun / empty buffer)
  uint64_t replays = 0;             // replay-last-block insertions
  uint64_t longest_replay_run = 0;  // consecutive replayed blocks (the "garble" proxy)
};

}  // namespace pandora

#endif  // PANDORA_SRC_AUDIO_SIGNAL_H_
