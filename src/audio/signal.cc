#include "src/audio/signal.h"

#include <cmath>

#include "src/audio/ulaw.h"

namespace pandora {
namespace {

constexpr double kPi = 3.14159265358979323846;

}  // namespace

int16_t SineSource::SampleAt(Time t) {
  double seconds = ToSeconds(t);
  return static_cast<int16_t>(amplitude_ * std::sin(2.0 * kPi * frequency_hz_ * seconds));
}

int16_t SpeechLikeSource::SampleAt(Time t) {
  double seconds = ToSeconds(t);
  // Syllable-rate gate: talk for talk_fraction_ of each cycle.
  double phase = seconds * syllable_hz_;
  double cycle_pos = phase - std::floor(phase);
  if (cycle_pos > talk_fraction_) {
    return 0;
  }
  // Raised-cosine envelope within the talk burst.
  double envelope = 0.5 * (1.0 - std::cos(2.0 * kPi * cycle_pos / talk_fraction_));
  // A fundamental plus two formant-ish harmonics.
  double wave = 0.6 * std::sin(2.0 * kPi * 180.0 * seconds) +
                0.3 * std::sin(2.0 * kPi * 720.0 * seconds) +
                0.1 * std::sin(2.0 * kPi * 1440.0 * seconds);
  return static_cast<int16_t>(amplitude_ * envelope * wave);
}

double ComputeSnrDb(SampleSource* reference, const std::vector<PlayedSample>& played,
                    Duration latency) {
  if (played.empty()) {
    return 0.0;
  }
  double signal_power = 0.0;
  double noise_power = 0.0;
  for (const PlayedSample& sample : played) {
    double ref = static_cast<double>(reference->SampleAt(sample.when - latency));
    // Quantise the reference through the codec so companding error does not
    // count as channel noise.
    double ref_q = static_cast<double>(ULawDecode(ULawEncode(static_cast<int16_t>(ref))));
    double got = static_cast<double>(ULawDecode(sample.ulaw));
    signal_power += ref_q * ref_q;
    noise_power += (got - ref_q) * (got - ref_q);
  }
  if (noise_power <= 0.0) {
    return 120.0;  // effectively perfect
  }
  if (signal_power <= 0.0) {
    return 0.0;
  }
  return 10.0 * std::log10(signal_power / noise_power);
}

}  // namespace pandora
