// AudioSender: the block-handler / server-writer pair of the audio board's
// outgoing path (section 3.5, fig 3.5).
//
// "When sufficient 2ms blocks have accumulated to justify the overhead of a
// Pandora segment header, the server writer process is ordered by the block
// handler to transmit them to the server board."  The block count per
// segment defaults to 2 (4ms, principle 7) and is dynamically alterable
// from 1 to 12 via command — used when a recipient cannot keep up or when
// particularly low latency is wanted.
//
// Microphone muting (section 4.3) is applied here, "as they are copied from
// the codec fifo to the server link".
#ifndef PANDORA_SRC_AUDIO_SENDER_H_
#define PANDORA_SRC_AUDIO_SENDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/audio/costs.h"
#include "src/audio/muting.h"
#include "src/buffer/pool.h"
#include "src/control/command.h"
#include "src/control/report.h"
#include "src/runtime/alt.h"
#include "src/runtime/resource.h"
#include "src/runtime/scheduler.h"
#include "src/segment/audio_block.h"

namespace pandora {

struct AudioSenderOptions {
  std::string name = "audio.sender";
  StreamId stream = kInvalidStream;
  int blocks_per_segment = kDefaultBlocksPerSegment;
  bool start_immediately = true;  // else wait for kStartStream
  AudioCpuCosts costs;
};

class AudioSender {
 public:
  AudioSender(Scheduler* sched, AudioSenderOptions options, Channel<AudioBlock>* blocks_in,
              BufferPool* pool, Channel<SegmentRef>* segments_out, CpuModel* cpu = nullptr,
              MutingControl* muting = nullptr, ReportSink* report_sink = nullptr);

  void Start(Priority priority = Priority::kLow);

  CommandChannel& commands() { return command_; }

  uint64_t segments_sent() const { return segments_sent_; }
  uint64_t blocks_consumed() const { return blocks_consumed_; }
  int blocks_per_segment() const { return blocks_per_segment_; }
  uint32_t next_sequence() const { return sequence_; }

 private:
  Process Run();
  Task<void> EmitSegment();
  void HandleCommand(const Command& command);

  Scheduler* sched_;
  AudioSenderOptions options_;
  Channel<AudioBlock>* blocks_in_;
  BufferPool* pool_;
  Channel<SegmentRef>* segments_out_;
  CpuModel* cpu_;
  MutingControl* muting_;
  Reporter reporter_;
  CommandChannel command_;

  bool producing_;
  int blocks_per_segment_;
  std::vector<uint8_t> pending_;
  Time pending_start_ = 0;
  uint32_t sequence_ = 0;
  uint64_t segments_sent_ = 0;
  uint64_t blocks_consumed_ = 0;
  bool started_ = false;
};

}  // namespace pandora

#endif  // PANDORA_SRC_AUDIO_SENDER_H_
