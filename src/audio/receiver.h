// AudioReceiver: the incoming half of the audio board (fig 3.5 bottom).
//
// Receives audio segments from the server link, detects missing segments by
// sequence number (section 3.8), splits them into 2ms blocks and feeds the
// destination-side clawback buffers.  Stream lifecycle is implicit: the
// clawback bank creates buffers for new stream numbers and retires them
// when drained, so the receiver needs no per-stream configuration.
#ifndef PANDORA_SRC_AUDIO_RECEIVER_H_
#define PANDORA_SRC_AUDIO_RECEIVER_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/audio/costs.h"
#include "src/buffer/clawback.h"
#include "src/buffer/pool.h"
#include "src/control/report.h"
#include "src/runtime/resource.h"
#include "src/runtime/scheduler.h"
#include "src/segment/sequence.h"

namespace pandora {

struct AudioReceiverOptions {
  std::string name = "audio.receiver";
  AudioCpuCosts costs;
};

class AudioReceiver {
 public:
  AudioReceiver(Scheduler* sched, AudioReceiverOptions options, Channel<SegmentRef>* segments_in,
                ClawbackBank* bank, CpuModel* cpu = nullptr, ReportSink* report_sink = nullptr);

  void Start(Priority priority = Priority::kHigh);

  uint64_t segments_received() const { return segments_received_; }
  uint64_t blocks_delivered() const { return blocks_delivered_; }
  uint64_t blocks_rejected() const { return blocks_rejected_; }

  // Loss visible at this destination, per stream.
  const SequenceTracker* TrackerFor(StreamId stream) const {
    auto it = trackers_.find(stream);
    return it == trackers_.end() ? nullptr : &it->second;
  }
  uint64_t total_missing() const;

 private:
  Process Run();

  Scheduler* sched_;
  AudioReceiverOptions options_;
  Channel<SegmentRef>* segments_in_;
  ClawbackBank* bank_;
  CpuModel* cpu_;
  Reporter reporter_;

  std::map<StreamId, SequenceTracker> trackers_;
  uint64_t segments_received_ = 0;
  uint64_t blocks_delivered_ = 0;
  uint64_t blocks_rejected_ = 0;
  bool started_ = false;
};

}  // namespace pandora

#endif  // PANDORA_SRC_AUDIO_RECEIVER_H_
