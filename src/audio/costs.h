// CPU cost calibration for the audio transputer.
//
// Substitution for the T425's real instruction timings (DESIGN.md): each
// audio-board operation charges a microsecond cost against the board's
// CpuModel.  The defaults are calibrated to reproduce the paper's capacity
// statement (section 4.2): "The T425 transputer used on the audio board can
// mix five audio streams in the straightforward case, but only three if we
// have jitter correction, muting, an outgoing stream and the interface code
// running at the same time."
//
// Budget per 2ms mixing tick = 2000us of CPU:
//   plain:  base + 5*mix                   = 100 + 5*360        = 1900 <= 2000
//           base + 6*mix                   = 100 + 6*360        = 2260  > 2000
//   full:   base + 3*(mix+jc) + mute + outgoing + interface
//           100 + 3*480 + 120 + 180 + 160  = 2000 <= 2000
//           100 + 4*480 + 120 + 180 + 160  = 2480  > 2000
#ifndef PANDORA_SRC_AUDIO_COSTS_H_
#define PANDORA_SRC_AUDIO_COSTS_H_

#include "src/runtime/time.h"

namespace pandora {

struct AudioCpuCosts {
  // Fixed scheduling/housekeeping per 2ms mixer tick.
  Duration mixer_base = Micros(100);
  // Mixing one stream's block into the accumulator.
  Duration mix_per_stream = Micros(360);
  // Clawback jitter correction per stream per tick.
  Duration jitter_correction_per_stream = Micros(120);
  // The muting scan + table application per tick.
  Duration muting = Micros(120);
  // Handling the outgoing (microphone) stream per tick.
  Duration outgoing_stream = Micros(180);
  // Interface code (command parsing, reports) per tick while running.
  Duration interface_code = Micros(160);
  // Segment header build/parse on the audio board.
  Duration segment_handling = Micros(40);
};

}  // namespace pandora

#endif  // PANDORA_SRC_AUDIO_COSTS_H_
