#include "src/audio/muting.h"

#include <cmath>

#include "src/audio/ulaw.h"

namespace pandora {

MutingTable::MutingTable(double factor) : factor_(factor) {
  for (int u = 0; u < 256; ++u) {
    double scaled = factor * static_cast<double>(ULawDecode(static_cast<uint8_t>(u)));
    if (scaled > 32767.0) {
      scaled = 32767.0;
    }
    if (scaled < -32768.0) {
      scaled = -32768.0;
    }
    table_[static_cast<size_t>(u)] = ULawEncode(static_cast<int16_t>(std::lround(scaled)));
  }
}

MutingControl::MutingControl(const MutingConfig& config)
    : config_(config),
      full_table_(1.0),
      half_table_(config.half_factor),
      deep_table_(config.deep_factor) {}

void MutingControl::Configure(const MutingConfig& config) {
  config_ = config;
  half_table_ = MutingTable(config.half_factor);
  deep_table_ = MutingTable(config.deep_factor);
}

bool MutingControl::BlockIsLoud(const AudioBlock& block) const {
  for (uint8_t sample : block.samples) {
    int16_t linear = ULawDecode(sample);
    if (linear > config_.threshold || linear < -config_.threshold) {
      return true;
    }
  }
  return false;
}

void MutingControl::Advance(Time now) {
  // Apply every timed transition that has fallen due; a long quiet gap can
  // walk kAttack -> kDeep -> kRelease -> kFull in one call.
  for (;;) {
    switch (state_) {
      case State::kFull:
        return;
      case State::kAttack: {
        Time due = state_entered_ + config_.attack_step;
        if (now < due) {
          return;
        }
        state_ = State::kDeep;
        state_entered_ = due;
        continue;
      }
      case State::kDeep: {
        if (last_loud_ < 0) {
          return;
        }
        Time due = last_loud_ + config_.deep_hold;
        if (now < due) {
          return;
        }
        state_ = State::kRelease;
        state_entered_ = due;
        continue;
      }
      case State::kRelease: {
        Time due = state_entered_ + config_.release_hold;
        if (now < due) {
          return;
        }
        state_ = State::kFull;
        state_entered_ = due;
        continue;
      }
    }
  }
}

void MutingControl::ObserveSpeakerBlock(Time now, const AudioBlock& block) {
  if (!config_.enabled) {
    return;
  }
  Advance(now);
  if (!BlockIsLoud(block)) {
    return;
  }
  last_loud_ = now;
  switch (state_) {
    case State::kFull:
      state_ = State::kAttack;
      state_entered_ = now;
      ++activations_;
      break;
    case State::kAttack:
    case State::kDeep:
      break;  // stay; last_loud_ refreshed above
    case State::kRelease:
      // Reverberation came back: drop to the deep factor again.
      state_ = State::kDeep;
      break;
  }
}

double MutingControl::FactorAt(Time now) {
  if (!config_.enabled) {
    return 1.0;
  }
  Advance(now);
  switch (state_) {
    case State::kFull:
      return 1.0;
    case State::kAttack:
    case State::kRelease:
      return config_.half_factor;
    case State::kDeep:
      return config_.deep_factor;
  }
  return 1.0;
}

void MutingControl::ApplyToMicBlock(Time now, AudioBlock* block) {
  if (!config_.enabled) {
    return;
  }
  Advance(now);
  switch (state_) {
    case State::kFull:
      return;  // identity; skip the table walk
    case State::kAttack:
    case State::kRelease:
      half_table_.ApplyToBlock(block);
      return;
    case State::kDeep:
      deep_table_.ApplyToBlock(block);
      return;
  }
}

}  // namespace pandora
