#include "src/repository/repository.h"

#include "src/runtime/check.h"

namespace pandora {

Repository::Repository(Scheduler* sched, RepositoryOptions options, ReportSink* report_sink)
    : sched_(sched),
      options_(std::move(options)),
      reporter_(sched, report_sink, options_.name),
      input_(sched, options_.name + ".in"),
      ready_(sched, options_.name + ".ready"),
      disk_(sched, options_.name + ".disk", options_.disk_bits_per_second) {}

void Repository::Start() {
  PANDORA_CHECK(!started_);
  started_ = true;
  // High priority: recording wins disk reservations over playback (the
  // reversed principle 1).
  sched_->Spawn(RecordProc(), options_.name + ".record", Priority::kHigh);
}

void Repository::Arm(StreamId stream) {
  Recording& recording = recordings_[stream];
  recording.armed = true;
}

void Repository::Finish(StreamId stream) {
  auto it = recordings_.find(stream);
  if (it == recordings_.end()) {
    return;
  }
  Recording& recording = it->second;
  recording.armed = false;
  if (recording.repacked || recording.segments.empty() || !recording.segments[0].is_audio()) {
    return;
  }
  // "This is done as a separate operation after the stream has been
  // recorded": 2ms blocks split out and merged into 40ms segments.
  AudioRepacker repacker(stream);
  std::vector<Segment> stored;
  for (const Segment& live : recording.segments) {
    for (Segment& repacked : repacker.Push(live)) {
      stored.push_back(std::move(repacked));
    }
  }
  if (auto tail = repacker.Flush()) {
    stored.push_back(std::move(*tail));
  }
  recording.stored_bytes = 0;
  for (const Segment& segment : stored) {
    recording.stored_bytes += segment.EncodedSize();
  }
  recording.segments = std::move(stored);
  recording.repacked = true;
  reporter_.ReportNow("repository.repacked", ReportSeverity::kInfo,
                      "stream " + std::to_string(stream) + " repacked: " +
                          std::to_string(recording.raw_bytes) + " -> " +
                          std::to_string(recording.stored_bytes) + " bytes",
                      static_cast<int64_t>(recording.stored_bytes));
}

const Repository::Recording* Repository::Find(StreamId stream) const {
  auto it = recordings_.find(stream);
  return it == recordings_.end() ? nullptr : &it->second;
}

Process Repository::RecordProc() {
  for (;;) {
    SegmentRef ref = co_await input_.Receive();
    const StreamId stream = ref->stream;
    auto it = recordings_.find(stream);
    if (it == recordings_.end() || !it->second.armed) {
      ++segments_discarded_;
      co_await ready_.Send(true);
      continue;
    }
    // Accurate recording: every segment is written; the only cost is disk
    // time, reserved at recorder priority.
    co_await disk_.Transmit(ref->EncodedSize());
    // Re-fetch after the disk wait: Finish() may have disarmed — and
    // repacked — this recording while the write was in flight, and a live
    // 2ms block appended to a repacked stream would corrupt its timeline.
    it = recordings_.find(stream);
    if (it == recordings_.end() || !it->second.armed) {
      ++segments_discarded_;
      co_await ready_.Send(true);
      continue;
    }
    Recording& recording = it->second;
    if (recording.segments.empty()) {
      recording.first_timestamp = ref->header.timestamp;
    }
    recording.raw_bytes += ref->EncodedSize();
    recording.segments.push_back(*ref);
    ++recording.segments_received;
    ++segments_recorded_;
    co_await ready_.Send(true);
  }
}

ProcessHandle Repository::Play(StreamId stored, StreamId as_stream, Channel<SegmentRef>* out,
                               BufferPool* pool, int blocks_per_segment) {
  Recording* recording = &recordings_[stored];
  return sched_->Spawn(PlayProc(recording, as_stream, out, pool, blocks_per_segment),
                       options_.name + ".play." + std::to_string(stored), Priority::kLow);
}

Process Repository::PlayProc(Recording* recording, StreamId as_stream, Channel<SegmentRef>* out,
                             BufferPool* pool, int blocks_per_segment) {
  if (recording->segments.empty()) {
    co_return;
  }
  const Time start = sched_->now();
  const Time base = FromTimestampTicks(recording->segments[0].header.timestamp);

  uint32_t sequence = 0;
  AudioUnpacker unpacker(as_stream, blocks_per_segment);
  // Indexed with a per-step copy, not a range-for: RecordProc may append to
  // (and Finish() repack) this recording between the waits below, which
  // invalidates iterators; the copy is the disk read made explicit.
  for (size_t i = 0; i < recording->segments.size(); ++i) {
    const Segment segment = recording->segments[i];
    // Real-time pacing from the recorded timestamps.
    Time due = start + (FromTimestampTicks(segment.header.timestamp) - base);
    if (due > sched_->now()) {
      co_await sched_->WaitUntil(due);
    }
    co_await disk_.Transmit(segment.EncodedSize());  // read back from disk

    if (segment.is_audio() && recording->repacked) {
      for (Segment& live : unpacker.Push(segment)) {
        // Re-time the unpacked segment onto the playback clock.
        Time offset = live.source_time() - base;
        SegmentRef ref = co_await pool->Allocate();
        *ref = std::move(live);
        ref->stream = as_stream;
        ref->header.sequence = sequence++;
        ref->header.timestamp = ToTimestampTicks(start + offset);
        co_await out->Send(std::move(ref));
      }
    } else {
      SegmentRef ref = co_await pool->Allocate();
      *ref = segment;
      ref->stream = as_stream;
      ref->header.sequence = sequence++;
      ref->header.timestamp =
          ToTimestampTicks(start + (FromTimestampTicks(segment.header.timestamp) - base));
      co_await out->Send(std::move(ref));
    }
  }
  if (auto tail = unpacker.Flush()) {
    SegmentRef ref = co_await pool->Allocate();
    *ref = std::move(*tail);
    ref->stream = as_stream;
    ref->header.sequence = sequence++;
    co_await out->Send(std::move(ref));
  }
}

}  // namespace pandora
