// Repository: stream recording and playback (sections 2.1, 3.2, 4.1).
//
// Repositories reverse principle 1: "the incoming data streams should be
// recorded as accurately as possible, even if that means degrading streams
// that are currently being played out.  It is a simple matter to play a
// stream again, but recording one again could present greater difficulties."
// Recording therefore accepts everything (bounded only by disk bandwidth,
// where the recorder's high priority wins reservations over playback).
//
// After recording finishes, audio is repacked from live 2..24ms segments
// into the 40ms/36-byte-header storage format, "played back directly to any
// Pandora box".  Per-recording timestamp offsets are kept so streams
// recorded together can be re-synchronised at playback (section 3.2).
#ifndef PANDORA_SRC_REPOSITORY_REPOSITORY_H_
#define PANDORA_SRC_REPOSITORY_REPOSITORY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/buffer/pool.h"
#include "src/control/report.h"
#include "src/runtime/resource.h"
#include "src/runtime/scheduler.h"
#include "src/segment/repack.h"
#include "src/segment/segment.h"

namespace pandora {

struct RepositoryOptions {
  std::string name = "repository";
  int64_t disk_bits_per_second = 16'000'000;
};

class Repository {
 public:
  Repository(Scheduler* sched, RepositoryOptions options, ReportSink* report_sink = nullptr);

  void Start();

  // Switch-destination endpoint for recording (fig 3.6 ready protocol;
  // always answers TRUE — recordings are not degraded).
  Channel<SegmentRef>& input() { return input_; }
  Channel<bool>& ready() { return ready_; }

  // Begin accepting segments labelled `stream`.
  void Arm(StreamId stream);
  // Stop recording `stream`; audio recordings are repacked for storage.
  void Finish(StreamId stream);

  struct Recording {
    std::vector<Segment> segments;
    uint32_t first_timestamp = 0;  // offset for cross-stream sync
    bool armed = false;
    bool repacked = false;
    uint64_t segments_received = 0;
    size_t raw_bytes = 0;     // as received (live headers)
    size_t stored_bytes = 0;  // after repacking
  };

  const Recording* Find(StreamId stream) const;

  // Replays a stored stream into `out` (usually a switch input), labelled
  // `as_stream`, paced in real time by the recorded timestamps.  Audio
  // recordings are unpacked into `blocks_per_segment`-block live segments.
  ProcessHandle Play(StreamId stored, StreamId as_stream, Channel<SegmentRef>* out,
                     BufferPool* pool, int blocks_per_segment = kDefaultBlocksPerSegment);

  uint64_t segments_recorded() const { return segments_recorded_; }
  uint64_t segments_discarded() const { return segments_discarded_; }
  BandwidthGate& disk() { return disk_; }

 private:
  Process RecordProc();
  Process PlayProc(Recording* recording, StreamId as_stream, Channel<SegmentRef>* out,
                   BufferPool* pool, int blocks_per_segment);

  Scheduler* sched_;
  RepositoryOptions options_;
  Reporter reporter_;
  Channel<SegmentRef> input_;
  Channel<bool> ready_;
  BandwidthGate disk_;
  std::map<StreamId, Recording> recordings_;
  uint64_t segments_recorded_ = 0;
  uint64_t segments_discarded_ = 0;
  bool started_ = false;
};

}  // namespace pandora

#endif  // PANDORA_SRC_REPOSITORY_REPOSITORY_H_
