#!/usr/bin/env python3
"""pandora shard_audit -- whole-repo mutable-static inventory for sharding.

The per-file linter (pandora_lint.py) checks local idioms; this pass walks
all of src/ at once and builds the work-list for ROADMAP item 1 (the sharded
M:N scheduler): every piece of static mutable state that will become a data
race -- or a cross-shard determinism leak -- the day scheduler shards run on
real threads.

Two kinds of declaration are inventoried:

  * `static` declarations, wherever they appear: function-local statics,
    namespace-scope statics, and class-static data members.
  * plain namespace-scope variable definitions (globals without `static`).

Each entry is classified const/constexpr (immutable: fine) or mutable.  A
mutable entry must carry exactly one annotation from src/runtime/shard.h,
immediately before the declaration:

  PANDORA_SHARD_LOCAL            -- to be replicated per shard
  PANDORA_SHARD_SHARED("why")    -- deliberately cross-shard; reason required

Anything mutable and unannotated is an error (rule `mutable-global`), as is
a PANDORA_SHARD_SHARED with an empty reason (`shard-shared-reason`) or use
of the macros without including src/runtime/shard.h (`missing-include`).

Since the sharded M:N scheduler landed (src/runtime/shard_set.h), the
PANDORA_SHARD_LOCAL promise is no longer an IOU: shards run on real OS
worker threads, and the one sanctioned replication mechanism for static
storage is `thread_local` (shards are statically assigned to workers, so
per-thread is per-shard-group).  A mutable static annotated
PANDORA_SHARD_LOCAL without `thread_local` storage is therefore a data race
shipping under a stale annotation (rule `shard-local-not-threadlocal`).
Every entry now also records whether it is thread_local, so the JSON diff
shows replication state per commit.

`--json FILE` dumps the full inventory (annotated entries included) so CI
can archive it per commit; the sharding PR is reviewed against that diff.

Known heuristic limit: a variable defined with constructor-paren syntax and
no `=` (e.g. `static Foo f(1);`) is indistinguishable from a function
prototype and is skipped -- use `= Foo(...)` or brace-init, which the rest
of src/ already does.

Usage:
  tools/lint/shard_audit.py [--root DIR] [--json FILE] [--self-test]
"""

import argparse
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from pandora_lint import (  # noqa: E402
    FileContext,
    find_matching_brace,
    iter_source_files,
    line_of,
)

STATIC_RE = re.compile(r"\bstatic\b")
NAMESPACE_RE = re.compile(r"\bnamespace(?:\s+[\w:]+)?\s*(?:\[\[[^\]]*\]\]\s*)?\{")
CLASS_HEAD_RE = re.compile(
    r"\b(?:class|struct|union|enum(?:\s+(?:class|struct))?)\s+"
    r"(?:\[\[[^\]]*\]\]\s*)*"
    r"[A-Za-z_][^;{}()]*\{")
ANNOT_LOCAL_TAIL_RE = re.compile(r"\bPANDORA_SHARD_LOCAL\s*$")
ANNOT_SHARED_TAIL_RE = re.compile(r"\bPANDORA_SHARD_SHARED\s*\(([^)]*)\)\s*$")
ANNOT_LOCAL_HEAD_RE = re.compile(r"\s*PANDORA_SHARD_LOCAL\b")
ANNOT_SHARED_HEAD_RE = re.compile(r"\s*PANDORA_SHARD_SHARED\s*\(([^)]*)\)")
ACCESS_LABEL_RE = re.compile(r"^\s*(?:public|private|protected)\s*:")
SHARD_INCLUDE_RE = re.compile(r'#\s*include\s+"src/runtime/shard\.h"')

# First token of a masked namespace-scope statement that makes it not a
# variable definition.  `inline`, `constinit` and cv-qualifiers are NOT here:
# `inline int g = 0;` is a global.
SKIP_HEAD_KEYWORDS = frozenset((
    "using", "typedef", "namespace", "template", "class", "struct", "enum",
    "union", "extern", "friend", "static_assert", "public", "private",
    "protected", "return", "if", "for", "while", "do", "switch", "case",
    "goto", "asm", "requires", "concept", "export",
))


class AuditFinding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [shard-audit-{self.rule}] {self.message}"


def _preproc_lines(code_lines):
    """1-based line numbers of preprocessor directives and their `\\`
    continuations."""
    out = set()
    cont = False
    for i, line in enumerate(code_lines, 1):
        if cont or line.lstrip().startswith("#"):
            out.add(i)
            cont = line.rstrip().endswith("\\")
        else:
            cont = False
    return out


def _class_spans(code):
    spans = []
    for m in CLASS_HEAD_RE.finditer(code):
        close = find_matching_brace(code, m.end() - 1)
        if close >= 0:
            spans.append((m.end() - 1, close))
    return spans


def _innermost_kind(idx, fn_spans, cls_spans):
    """Scope of a static at idx: smallest enclosing span wins (a static in a
    member-function body is function-local, not class-static)."""
    best = None
    for spans, kind in ((fn_spans, "local_static"), (cls_spans, "class_static")):
        for a, b in spans:
            if a < idx < b and (best is None or b - a < best[0]):
                best = (b - a, kind)
    return best[1] if best else "namespace_static"


def _head_is_mutable(head):
    """Mutability of the declared object given everything left of the
    initializer.  For pointers the pointer itself must be const (the text
    after the last `*`); `const char* p` is a mutable global."""
    if re.search(r"\bconstexpr\b", head):
        return False
    if "*" in head:
        return not re.search(r"\bconst\b", head[head.rfind("*") + 1:])
    return not re.search(r"\bconst\b", head)


def _declared_name(head):
    cleaned = re.sub(r"\[[^\]]*\]", " ", head)
    names = re.findall(r"[A-Za-z_]\w*", cleaned)
    for name in reversed(names):
        if name not in ("const", "constexpr", "constinit", "volatile",
                        "static", "inline", "thread_local", "mutable"):
            return name
    return "<unknown>"


def _statement_annotation(ctx, prefix_start, decl_start):
    """Annotation immediately preceding the declaration, plus the shared
    reason recovered from the raw text (string literals are stripped from
    ctx.code, but stripping preserves layout)."""
    prefix = ctx.code[prefix_start:decl_start]
    if ANNOT_LOCAL_TAIL_RE.search(prefix):
        return "shard-local", None
    m = ANNOT_SHARED_TAIL_RE.search(prefix)
    if m:
        a, b = m.span(1)
        reason = ctx.text[prefix_start + a:prefix_start + b].strip().strip('"')
        return "shard-shared", reason
    return None, None


def _audit_statics(ctx, fn_spans, cls_spans, preproc, entries, report):
    code = ctx.code
    n = len(code)
    for m in STATIC_RE.finditer(code):
        line = line_of(code, m.start())
        if line in preproc:
            continue  # a `static` inside a macro definition
        # Statement start: past the previous ; { or } (then drop any access
        # label -- `public:` -- that rides along).
        stmt_start = max(code.rfind(";", 0, m.start()),
                         code.rfind("{", 0, m.start()),
                         code.rfind("}", 0, m.start())) + 1
        label = ACCESS_LABEL_RE.match(code[stmt_start:m.start()])
        prefix_start = stmt_start + (label.end() if label else 0)

        # Forward scan: find the statement end, spotting function shapes.
        i = m.end()
        saw_paren_group = False
        eq_idx = -1
        end = -1
        is_func_def = False
        while i < n:
            c = code[i]
            if c == "(":
                if eq_idx < 0:
                    saw_paren_group = True
                depth = 1
                i += 1
                while i < n and depth:
                    if code[i] == "(":
                        depth += 1
                    elif code[i] == ")":
                        depth -= 1
                    i += 1
                continue
            if c == "=" and eq_idx < 0 and (i + 1 >= n or code[i + 1] != "="):
                eq_idx = i
            elif c == "{":
                if eq_idx < 0 and saw_paren_group:
                    is_func_def = True
                    end = i
                    break
                close = find_matching_brace(code, i)  # brace initializer
                if close < 0:
                    break
                i = close + 1
                continue
            elif c in ";}":
                end = i
                break
            i += 1
        if end < 0 or is_func_def or code[end] == "}":
            continue  # function definition or unterminated
        if saw_paren_group and eq_idx < 0:
            continue  # prototype / member-function declaration (or the
            #           documented ctor-paren limitation)

        head = code[m.start():eq_idx if eq_idx >= 0 else end]
        if re.search(r"\boperator\b", head):
            continue  # `static X operator==(...) = default;` and friends
        name = _declared_name(head)
        kind = _innermost_kind(m.start(), fn_spans, cls_spans)
        mutable = _head_is_mutable(head)
        # `thread_local` may sit on either side of `static`.
        tls = bool(re.search(r"\bthread_local\b", code[prefix_start:end]))
        annotation, reason = _statement_annotation(ctx, prefix_start, m.start())
        _record(ctx, entries, report, line, name, kind, mutable, tls,
                annotation, reason, code[prefix_start:end + 1])


def _masked_namespace_scope(ctx, fn_spans, cls_spans, preproc):
    """ctx.code with function bodies, class bodies and preprocessor lines
    blanked, so what remains -- split on ';' -- are the namespace-scope
    statements.  Function-body close braces become ';' so a definition's
    signature terminates instead of fusing with the next statement."""
    code = ctx.code
    buf = list(code)

    def blank(a, b):
        for i in range(a, b + 1):
            if buf[i] != "\n":
                buf[i] = " "

    for a, b in fn_spans:
        blank(a, b)
        buf[b] = ";"
    for a, b in cls_spans:
        blank(a, b)  # the `;` after the class body survives in the source
    for m in NAMESPACE_RE.finditer(code):
        close = find_matching_brace(code, m.end() - 1)
        buf[m.end() - 1] = ";"
        if close >= 0:
            buf[close] = ";"
    masked = "".join(buf)
    lines = masked.split("\n")
    for ln in preproc:
        lines[ln - 1] = " " * len(lines[ln - 1])
    return "\n".join(lines)


def _audit_namespace_vars(ctx, fn_spans, cls_spans, preproc, entries, report):
    masked = _masked_namespace_scope(ctx, fn_spans, cls_spans, preproc)
    pos = 0
    for sem in re.finditer(";", masked):
        raw_stmt = masked[pos:sem.start()]
        stmt_begin = pos + (len(raw_stmt) - len(raw_stmt.lstrip()))
        pos = sem.end()
        stmt = raw_stmt.strip()
        if not stmt:
            continue
        if re.search(r"\bstatic\b", stmt):
            continue  # inventoried by the static pass
        annotation, reason = None, None
        body_begin = stmt_begin
        am = ANNOT_LOCAL_HEAD_RE.match(masked, stmt_begin)
        if am:
            annotation, body_begin = "shard-local", am.end()
        else:
            am = ANNOT_SHARED_HEAD_RE.match(masked, stmt_begin)
            if am:
                a, b = am.span(1)
                annotation = "shard-shared"
                reason = ctx.text[a:b].strip().strip('"')
                body_begin = am.end()
        body = masked[body_begin:sem.start()].strip()
        if not body:
            continue
        tokens = re.findall(r"[A-Za-z_]\w*", body)
        if not tokens or tokens[0] in SKIP_HEAD_KEYWORDS:
            continue
        eq = re.search(r"=(?!=)", body)
        head = body[:eq.start()] if eq else body
        if "(" in head:
            continue  # free-function declaration or definition signature
        if "." in head or "->" in head or re.search(r"\boperator\b", head):
            continue  # expression statement / operator declaration, not a var
        # A definition needs at least a type and a name.
        if len(re.findall(r"[A-Za-z_]\w*", head)) < 2:
            continue
        line = line_of(masked, stmt_begin)
        name = _declared_name(head)
        mutable = _head_is_mutable(head)
        tls = bool(re.search(r"\bthread_local\b", head))
        _record(ctx, entries, report, line, name, "namespace_var", mutable,
                tls, annotation, reason, body)


def _record(ctx, entries, report, line, name, kind, mutable, thread_local,
            annotation, reason, declaration):
    entries.append({
        "file": ctx.relpath,
        "line": line,
        "name": name,
        "kind": kind,
        "mutable": mutable,
        "thread_local": thread_local,
        "annotation": annotation,
        "reason": reason,
        "declaration": " ".join(declaration.split())[:160],
    })
    if not mutable:
        return
    if annotation is None:
        report(line, "mutable-global",
               f"mutable {kind.replace('_', ' ')} `{name}` is a data race "
               "under the sharded scheduler (src/runtime/shard_set.h); make "
               "it const/constexpr or annotate PANDORA_SHARD_LOCAL / "
               "PANDORA_SHARD_SHARED(reason)")
    elif annotation == "shard-shared" and not reason:
        report(line, "shard-shared-reason",
               f"PANDORA_SHARD_SHARED on `{name}` needs a reason string "
               "saying how cross-shard access stays safe")
    elif annotation == "shard-local" and not thread_local:
        report(line, "shard-local-not-threadlocal",
               f"PANDORA_SHARD_LOCAL on `{name}` is a stale promise now that "
               "shards run on OS worker threads: per-shard static storage "
               "must be `thread_local` (the FramePool free lists are the "
               "model shape) or become per-Scheduler instance state")


def audit_file(relpath, text):
    """Audits one file; returns (findings, inventory entries)."""
    if not relpath.startswith("src/"):
        return [], []
    ctx = FileContext(relpath, text)
    findings = []

    def report(line, rule, message):
        findings.append(AuditFinding(relpath, line, rule, message))

    macro_use = re.search(r"\bPANDORA_SHARD_(?:LOCAL|SHARED)\b", ctx.code)
    if (macro_use and relpath != "src/runtime/shard.h"
            and not SHARD_INCLUDE_RE.search(text)):
        report(line_of(ctx.code, macro_use.start()), "missing-include",
               'shard annotations require #include "src/runtime/shard.h"')

    fn_spans = ctx.function_bodies()
    cls_spans = _class_spans(ctx.code)
    preproc = _preproc_lines(ctx.code_lines)
    entries = []
    _audit_statics(ctx, fn_spans, cls_spans, preproc, entries, report)
    _audit_namespace_vars(ctx, fn_spans, cls_spans, preproc, entries, report)
    entries.sort(key=lambda e: e["line"])
    return findings, entries


def run_audit(root):
    findings = []
    entries = []
    count = 0
    for relpath, full in iter_source_files(root, ["src"]):
        count += 1
        with open(full, encoding="utf-8", errors="replace") as fh:
            text = fh.read()
        f, e = audit_file(relpath, text)
        findings.extend(f)
        entries.extend(e)
    return findings, entries, count


def print_summary(entries, out=sys.stdout):
    by_dir = {}
    for e in entries:
        parts = e["file"].split("/")
        key = "/".join(parts[:2]) if len(parts) > 2 else parts[0]
        by_dir.setdefault(key, []).append(e)
    total_mut = sum(1 for e in entries if e["mutable"])
    unannotated = sum(1 for e in entries if e["mutable"] and not e["annotation"])
    print(f"shard_audit inventory: {len(entries)} static/global declaration(s), "
          f"{total_mut} mutable ({unannotated} unannotated)", file=out)
    for key in sorted(by_dir):
        es = by_dir[key]
        mut = [e for e in es if e["mutable"]]
        print(f"  {key:<18} {len(es):3d} total, {len(mut):2d} mutable"
              + ("" if not mut else ": "
                 + ", ".join(f"{e['name']} [{e['annotation'] or 'UNANNOTATED'}]"
                             for e in mut)),
              file=out)


EXPECT_AUDIT_RE = re.compile(r"//\s*EXPECT-AUDIT:\s*([\w-]+)")


def run_self_test(testdata):
    """Fixtures under testdata/shard/: bad/ must produce exactly the
    EXPECT-AUDIT findings; good/ must be clean."""
    failures = []
    checked = 0
    for relpath, full in iter_source_files(testdata, ["good", "bad"]):
        checked += 1
        with open(full, encoding="utf-8") as fh:
            text = fh.read()
        kind, _, virtual = relpath.partition("/")
        findings, _ = audit_file(virtual, text)
        expected = {}
        for i, line in enumerate(text.split("\n"), 1):
            for m in EXPECT_AUDIT_RE.finditer(line):
                expected.setdefault(i, set()).add(m.group(1))
        got = {}
        for f in findings:
            got.setdefault(f.line, set()).add(f.rule)
        if kind == "good":
            if findings:
                for f in findings:
                    failures.append(f"{relpath}: unexpected finding: {f}")
        elif got != expected:
            for line in sorted(set(expected) | set(got)):
                want = expected.get(line, set())
                have = got.get(line, set())
                if want != have:
                    failures.append(
                        f"{relpath}:{line}: expected {sorted(want) or 'none'}, "
                        f"got {sorted(have) or 'none'}")
    return failures, checked


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repository root (default: two levels up from this script)")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="write the full inventory (entries + findings) as JSON")
    parser.add_argument("--self-test", action="store_true",
                        help="audit the fixtures in testdata/shard/")
    args = parser.parse_args(argv)

    script_dir = os.path.dirname(os.path.abspath(__file__))
    root = args.root or os.path.dirname(os.path.dirname(script_dir))

    if args.self_test:
        failures, checked = run_self_test(
            os.path.join(script_dir, "testdata", "shard"))
        if failures:
            print("\n".join(failures))
            print(f"shard_audit self-test: FAILED ({len(failures)} mismatches "
                  f"across {checked} fixtures)")
            return 1
        print(f"shard_audit self-test: OK ({checked} fixtures)")
        return 0

    findings, entries, count = run_audit(root)
    for f in findings:
        print(f)
    print_summary(entries)
    if args.json:
        payload = {
            "files_scanned": count,
            "entries": entries,
            "findings": [vars(f) for f in findings],
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"shard_audit: inventory written to {args.json}")
    if findings:
        print(f"shard_audit: {len(findings)} finding(s) in {count} files")
        return 1
    print(f"shard_audit: OK ({count} files, every mutable static annotated)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
