// Known-bad fixture for shard_audit: PANDORA_SHARD_LOCAL written back when
// it was an IOU on a single-threaded runtime, never upgraded when the
// sharded scheduler landed.  Without `thread_local` the storage is shared
// by every worker thread — a data race hiding under a reassuring macro.
#include "src/runtime/shard.h"

namespace pandora {

PANDORA_SHARD_LOCAL int g_frames_recycled = 0;  // EXPECT-AUDIT: shard-local-not-threadlocal

int NextFrameSeq() {
  PANDORA_SHARD_LOCAL static int seq = 0;  // EXPECT-AUDIT: shard-local-not-threadlocal
  return ++seq;
}

}  // namespace pandora
