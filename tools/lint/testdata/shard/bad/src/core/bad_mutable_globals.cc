// Known-bad fixture for shard_audit: mutable static state with no shard
// annotation, plus a PANDORA_SHARD_SHARED missing its reason.
#include "src/runtime/shard.h"

namespace pandora {

int g_segments_dropped = 0;            // EXPECT-AUDIT: mutable-global
const char* g_last_box_name = nullptr;  // EXPECT-AUDIT: mutable-global

int NextSequence() {
  static int sequence = 0;  // EXPECT-AUDIT: mutable-global
  return ++sequence;
}

PANDORA_SHARD_SHARED() static int g_total_boxes = 0;  // EXPECT-AUDIT: shard-shared-reason

}  // namespace pandora
