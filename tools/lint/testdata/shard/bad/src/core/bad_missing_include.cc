// Known-bad fixture for shard_audit: a shard annotation used without
// including the header that defines it.

namespace pandora {

PANDORA_SHARD_LOCAL static int g_scratch = 0;  // EXPECT-AUDIT: missing-include  // EXPECT-AUDIT: shard-local-not-threadlocal

}  // namespace pandora
