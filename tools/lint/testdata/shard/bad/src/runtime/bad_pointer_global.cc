// Known-bad fixture for shard_audit: pointer-constness edge cases.  A
// pointer *to* const is still a mutable global (the pointer itself can be
// reseated); only a const pointer is immutable.  Class-static data members
// are audited like any other static.

namespace pandora {

const char* g_current_phase = "boot";  // EXPECT-AUDIT: mutable-global

// Pointer itself const: immutable, no annotation needed, no finding.
char* const g_arena_base = nullptr;

class StatsRegistry {
 public:
  static int flush_count_;  // EXPECT-AUDIT: mutable-global
  static constexpr int kMaxEntries = 128;
};

}  // namespace pandora
