// Known-good fixture for shard_audit: the per-shard pool shape.  Mirrors
// src/buffer/frame_pool.h after the sharded scheduler landed — a recycler's
// free-list heads are a function-local `static thread_local` array under
// PANDORA_SHARD_LOCAL, so each ShardSet worker owns its lists outright and
// the audit records the entry as mutable + thread_local with no findings.
#include "src/runtime/shard.h"

namespace pandora {
namespace {

struct FreeNode {
  FreeNode* next;
};

constexpr int kNumClasses = 64;

FreeNode*& FreeListHead(int cls) {
  PANDORA_SHARD_LOCAL static thread_local FreeNode* heads[kNumClasses] = {};
  return heads[cls];
}

}  // namespace

void* TakeBlock(int cls) {
  FreeNode*& head = FreeListHead(cls);
  FreeNode* node = head;
  if (node != nullptr) {
    head = node->next;
  }
  return node;
}

}  // namespace pandora
