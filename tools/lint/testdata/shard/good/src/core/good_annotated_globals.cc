// Known-good fixture for shard_audit: immutables need nothing; every
// mutable static carries an annotation; shard-local storage is genuinely
// thread_local now that shards run on OS worker threads; class-statics and prototypes are
// classified without noise.
#include "src/runtime/shard.h"

namespace pandora {
namespace {

constexpr int kMaxBoxes = 64;
const char* const kDefaultName = "box";

PANDORA_SHARD_LOCAL thread_local int g_spawn_count = 0;

PANDORA_SHARD_SHARED("written once before Scheduler::Run, read-only after")
BoxConfig* g_config = nullptr;

}  // namespace

int NextTicket() {
  PANDORA_SHARD_LOCAL static thread_local int ticket = 0;
  return ++ticket;
}

class BoxRegistry {
 public:
  static constexpr int kShards = 8;
  static BoxRegistry& Instance();

 private:
  int count_ = 0;
};

}  // namespace pandora
