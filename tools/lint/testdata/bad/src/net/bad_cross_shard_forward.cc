// Known-bad fixture: cross-shard forwarding shapes that hold a borrowed
// Circuit* across the serialization/propagation wait and then feed the
// stale borrow into the mailbox post.  The circuit map can be rewritten
// (teardown, re-open, crash sweep) during the suspension; the post then
// captures state from a recycled slot.
#include "src/net/atm.h"

namespace pandora {

Process AtmNetwork::ForwardDirect(AtmPort* src, Vci vci, WireRef wire) {
  Circuit* circuit = FindCircuit(src, vci);
  if (circuit == nullptr) {
    co_return;
  }
  Scheduler* sched = src->sched_;
  const Time exit_at = sched->now() + circuit->direct.propagation;
  co_await sched->WaitUntil(exit_at);
  // Stale: the wait above may have outlived the circuit.  The sanctioned
  // shape re-fetches (generation-checked) before touching it — or, for a
  // cross-shard exit, posts WITHOUT suspending at all.
  if (circuit->dst->shard_ != src->shard_) {  // EXPECT-LINT: suspension-borrow
    DeliverCrossShard(circuit, src, vci, exit_at, 0, wire->bytes.size(),
                      std::move(wire), exit_at);
  }
  co_return;
}

// The bridged-path back-edge variant: hop i's borrow survives hop i-1's
// wait on every pass after the first.
Process AtmNetwork::ForwardBridged(AtmPort* src, Vci vci, WireRef wire) {
  Circuit* circuit = FindCircuit(src, vci);
  if (circuit == nullptr) {
    co_return;
  }
  Scheduler* sched = src->sched_;
  for (size_t i = 0; i < circuit->path.size(); ++i) {
    const Time exit_at = sched->now() + circuit->path[i]->quality.propagation;  // EXPECT-LINT: suspension-borrow
    co_await sched->WaitUntil(exit_at);
  }
  co_return;
}

}  // namespace pandora
