// Known-bad fixture: borrows into scheduler/pool/map-owned state held
// across a co_await.  DropLater is the exact PR 3 shape -- a Circuit*
// fetched from the network's circuit map, then dereferenced after a timed
// wait with no re-fetch; the circuit can be torn down (and its slot
// recycled) during the suspension.
#include "src/net/atm.h"

namespace pandora {

Process AtmFault::DropLater(AtmNetwork* net, Vci vci, Time when) {
  Circuit* circuit = net->FindCircuit(vci);
  if (circuit == nullptr) {
    co_return;
  }
  co_await sched_->WaitUntil(when);
  circuit->up = false;  // EXPECT-LINT: suspension-borrow
  co_return;
}

// The loop back-edge variant: the first iteration reads a fresh pointer,
// every later one reads it after the WaitUntil of the previous pass.
Process AtmFault::Meter(AtmNetwork* net, Vci vci) {
  Circuit* circuit = net->FindCircuit(vci);
  if (circuit == nullptr) {
    co_return;
  }
  for (;;) {
    ++circuit->polls;  // EXPECT-LINT: suspension-borrow
    co_await sched_->WaitUntil(sched_->now() + 1);
  }
}

// Range-for keeps iterators into an owned container live across the Send
// rendezvous; an append or repack during the wait invalidates them.
Process FaultLog::Flush(Channel<SegmentRef>* out) {
  for (const Segment& segment : log_->segments) {  // EXPECT-LINT: suspension-borrow
    co_await out->Send(Wrap(segment));
  }
}

}  // namespace pandora
