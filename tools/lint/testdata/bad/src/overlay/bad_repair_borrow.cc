// Known-bad fixture: overlay repair code borrowing a child-list reference
// across a suspension.  TreeRepair::Detach and Join splice those vectors,
// so any pointer or reference held over a co_await may be stale by resume
// (rule suspension-borrow), and a retained awaiter-field address trips the
// frame-relocation rule just like in src/runtime/.
#include <coroutine>
#include <vector>

#include "src/overlay/tree.h"
#include "src/runtime/scheduler.h"

namespace pandora {

Process RepairPulse(Scheduler* sched, StripedTrees* trees, int tree, int node) {
  std::vector<int>& kids = trees->children[tree][node];
  co_await sched->WaitUntil(sched->now() + Millis(10));
  // The repair that ran during the wait may have spliced this vector.
  kids.push_back(node);  // EXPECT-LINT: suspension-borrow
  co_return;
}

struct BadRepairAwaiter {
  int orphan;
  int* parked;

  bool await_ready() const { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    parked = &orphan;  // EXPECT-LINT: awaiter-retained-address
    (void)h;
  }
  void await_resume() const {}
};

}  // namespace pandora
