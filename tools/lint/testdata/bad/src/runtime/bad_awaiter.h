// Fixture: retains a pointer to an awaiter subobject across a suspension
// point — the GCC-12 frame-relocation hazard pandora-lint exists to catch.
#ifndef PANDORA_SRC_RUNTIME_BAD_AWAITER_H_
#define PANDORA_SRC_RUNTIME_BAD_AWAITER_H_

#include <coroutine>

#include "src/runtime/scheduler.h"

namespace pandora {

struct BadSendAwaiter {
  int value;
  int* parked_elsewhere;

  bool await_ready() const { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    // Retaining &value across the suspension: the awaiter may be relocated
    // between await_suspend and await_resume, leaving this pointer dangling.
    parked_elsewhere = &value;  // EXPECT-LINT: awaiter-retained-address
    (void)h;
  }
  void await_resume() const {}
};

}  // namespace pandora

#endif  // PANDORA_SRC_RUNTIME_BAD_AWAITER_H_
