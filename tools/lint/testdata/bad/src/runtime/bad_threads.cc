// Fixture: OS threading and blocking primitives inside src/ break the
// deterministic discrete-event scheduler.
#include <mutex>  // EXPECT-LINT: thread-primitives
#include <thread>  // EXPECT-LINT: thread-primitives

#include "src/runtime/scheduler.h"

namespace pandora {

void SpinUpWorker() {
  std::mutex lock;  // EXPECT-LINT: thread-primitives
  std::thread worker([] {});  // EXPECT-LINT: thread-primitives
  usleep(1000);  // EXPECT-LINT: thread-primitives
  worker.join();
}

}  // namespace pandora
