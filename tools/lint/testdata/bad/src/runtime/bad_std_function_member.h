// Fixture: std::function stored inside the engine hot path — every shape
// the std-function-member rule must catch (plain member, initialised
// member, reference member, local variable in a runtime TU).
#ifndef PANDORA_SRC_RUNTIME_BAD_STD_FUNCTION_MEMBER_H_
#define PANDORA_SRC_RUNTIME_BAD_STD_FUNCTION_MEMBER_H_

#include <functional>

namespace pandora {

class BadTimerRecord {
 public:
  void Arm();

 private:
  std::function<void()> fire_;  // EXPECT-LINT: std-function-member
  std::function<int(int)> score_ = nullptr;  // EXPECT-LINT: std-function-member
  std::function<void()>& shared_hook_;  // EXPECT-LINT: std-function-member
};

inline void BadLocalCallable() {
  std::function<void()> deferred;  // EXPECT-LINT: std-function-member
  (void)deferred;
}

}  // namespace pandora

#endif  // PANDORA_SRC_RUNTIME_BAD_STD_FUNCTION_MEMBER_H_
