// Fixture: direct TraceRecorder::Record* calls outside src/trace/ bypass
// the macros' enabled-guards and compile-out path.
#include "src/trace/trace.h"

namespace pandora {

inline void InstrumentByHand(TraceRecorder* rec, TraceSiteId site) {
  rec->RecordBegin(site);  // EXPECT-LINT: trace-macros
  rec->RecordCounter(site, 7);  // EXPECT-LINT: trace-macros
  rec->RecordEnd(site);  // EXPECT-LINT: trace-macros
}

inline void InstrumentByValue(TraceRecorder& rec, TraceSiteId site) {
  rec.RecordInstantArgs(site, 1, 2);  // EXPECT-LINT: trace-macros
  rec.RecordHistogram(site, 42);  // EXPECT-LINT: trace-macros
}

}  // namespace pandora
