// Fixture: by-value segment rendezvous inside src/ — every Send deep-copies
// header + payload, defeating the zero-copy wire path.
#include "src/runtime/channel.h"
#include "src/segment/segment.h"

namespace pandora {

struct BadMixerTap {
  Channel<Segment>* input;  // EXPECT-LINT: segment-channels
};

inline void WireUp(Scheduler* sched) {
  Channel<Segment> relay(sched, "relay");  // EXPECT-LINT: segment-channels
  Channel< Segment >* alias = &relay;  // EXPECT-LINT: segment-channels
  (void)alias;
}

}  // namespace pandora
