// Known-bad fixture: iteration order of unordered containers leaking into
// behavior.  The visit order depends on hash seed and insertion history,
// so dispatch, trace output and golden hashes all go nondeterministic.

namespace pandora {

void RouteDump::Emit() {
  std::unordered_map<int, int> routes;
  routes[3] = 4;
  for (const auto& entry : routes) {  // EXPECT-LINT: unordered-iteration
    Print(entry.first);
  }
}

void RouteDump::Sweep() {
  std::unordered_set<int> live;
  live.insert(7);
  auto it = live.begin();  // EXPECT-LINT: unordered-iteration
  Use(*it);
}

}  // namespace pandora
