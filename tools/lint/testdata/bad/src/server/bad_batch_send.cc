// Fixture: per-element Send over a materialized batch (rule batched-drain).
// Every element pays a full dispatch round-trip even when the receiver is
// already parked — the shape the batched pipeline (DESIGN.md §15) replaces.
#include "src/buffer/small_vec.h"
#include "src/runtime/channel.h"

namespace pandora {

Task<void> ShipBatchOneAtATime(Channel<int>* out, SmallVec<int, 16>& batch) {
  for (size_t i = 0; i < batch.size(); ++i) {  // EXPECT-LINT: batched-drain
    co_await out->Send(batch[i]);
  }
  batch.clear();
}

Task<void> ShipLocalBatch(Channel<int>* out) {
  SmallVec<int, 8> pending;
  pending.push_back(1);
  while (!pending.empty()) {  // EXPECT-LINT: batched-drain
    int head = pending[0];
    pending.pop_front_n(1);
    co_await out->Send(head);
  }
}

}  // namespace pandora
