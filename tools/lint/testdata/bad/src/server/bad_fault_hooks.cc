// Known-bad fixture: a controller outside the fault layer poking circuit
// and port parameters directly.  Every such call must be scripted in a
// FaultPlan instead (rule fault-hooks).
#include "src/net/atm.h"

namespace pandora {

void MisbehavingController(AtmNetwork& net, AtmPort* port, NetHop* hop) {
  net.SetPortUp(port, false);                     // EXPECT-LINT: fault-hooks
  net.SetCircuitQuality(port, 7, HopQuality{});   // EXPECT-LINT: fault-hooks
  net.SetCircuitUp(port, 7, false);               // EXPECT-LINT: fault-hooks
  net.SetHopQuality(hop, HopQuality{});           // EXPECT-LINT: fault-hooks
  net.RestartPort(port);                          // EXPECT-LINT: fault-hooks
}

}  // namespace pandora
