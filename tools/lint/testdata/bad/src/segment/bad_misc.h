// Fixture: wrong include guard, relative include, raw new/delete, and a
// bare assert, all in one src/ header.
#ifndef BAD_MISC_H  // EXPECT-LINT: include-guard
#define BAD_MISC_H

#include <cassert>  // EXPECT-LINT: bare-assert

#include "segment.h"  // EXPECT-LINT: include-path

namespace pandora {

inline int* MakeScratch(int n) {
  assert(n > 0);  // EXPECT-LINT: bare-assert
  return new int[n];  // EXPECT-LINT: raw-new-delete
}

inline void FreeScratch(int* p) {
  delete[] p;  // EXPECT-LINT: raw-new-delete
}

}  // namespace pandora

#endif  // BAD_MISC_H
