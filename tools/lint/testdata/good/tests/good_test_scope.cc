// Fixture: src/-only rules must not fire outside src/ — tests may use
// assert, raw new (gtest fixtures do), and host threading if they need it.
#include <cassert>
#include <thread>

#include "src/runtime/scheduler.h"

namespace pandora {

void HostSideHarness() {
  assert(true);
  int* scratch = new int[8];
  delete[] scratch;
  std::thread t([] {});
  t.join();
}

}  // namespace pandora
