// Known-good fixture: a deliberate borrow across a suspension carries a
// NOLINT stating why the owner is stable, and a borrow whose every use
// precedes the first co_await needs nothing at all.

namespace pandora {

Process FaultDriver::Pulse(AtmNetwork* net, Vci vci, Time until) {
  // The fixture's premise: this driver owns the network exclusively for the
  // duration (no OpenCircuit/Teardown can run), so the borrow cannot die.
  Circuit* circuit = net->FindCircuit(vci);
  if (circuit == nullptr) {
    co_return;
  }
  co_await sched_->WaitUntil(until);
  circuit->up = true;  // NOLINT(pandora-suspension-borrow): driver holds exclusive ownership of net for this window
  co_return;
}

Process FaultDriver::Stamp(AtmNetwork* net, Vci vci) {
  Circuit* circuit = net->FindCircuit(vci);
  if (circuit == nullptr) {
    co_return;
  }
  // All uses happen before the first suspension: nothing is stale.
  const bool was_up = circuit->up;
  circuit->up = false;
  co_await sched_->WaitUntil(sched_->now() + 1);
  Report(was_up);
  co_return;
}

}  // namespace pandora
