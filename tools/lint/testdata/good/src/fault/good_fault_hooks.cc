// Known-good fixture: the fault layer itself is the sanctioned caller of
// the impairment mutators (rule fault-hooks does not fire under src/fault/).
#include "src/net/atm.h"

namespace pandora {

void ApplyEpisode(AtmNetwork& net, AtmPort* port, NetHop* hop) {
  net.SetPortUp(port, false);
  net.SetCircuitQuality(port, 7, HopQuality{});
  net.SetCircuitUp(port, 7, false);
  net.SetHopQuality(hop, HopQuality{});
  net.RestartPort(port);
}

}  // namespace pandora
