// Known-good fixture: the sanctioned ways to touch owned state around a
// suspension -- re-fetch the borrow after every co_await (the
// AtmNetwork::ForwardProc idiom, generation-checked), re-borrow inside the
// loop, or copy the element out before waiting.
#include "src/net/atm.h"

namespace pandora {

Process AtmFault::DropLater(AtmNetwork* net, Vci vci, Time when) {
  Circuit* circuit = net->FindCircuit(vci);
  if (circuit == nullptr) {
    co_return;
  }
  const uint64_t generation = circuit->generation;
  co_await sched_->WaitUntil(when);
  // Re-fetch: the map may have been rewritten during the wait.
  circuit = net->FindCircuit(vci);
  if (circuit == nullptr || circuit->generation != generation) {
    co_return;
  }
  circuit->up = false;
  co_return;
}

Process AtmFault::Meter(AtmNetwork* net, Vci vci) {
  for (;;) {
    // Borrowed fresh on every pass, so the wait below never goes stale.
    Circuit* circuit = net->FindCircuit(vci);
    if (circuit == nullptr) {
      co_return;
    }
    ++circuit->polls;
    co_await sched_->WaitUntil(sched_->now() + 1);
  }
}

Process FaultLog::Flush(Channel<SegmentRef>* out) {
  // Indexed with a per-step copy instead of a range-for: the copy is taken
  // before the rendezvous, so growth or repack during it is harmless.
  for (size_t i = 0; i < log_->segments.size(); ++i) {
    const Segment segment = log_->segments[i];
    co_await out->Send(Wrap(segment));
  }
}

}  // namespace pandora
