// Known-good fixture: the sanctioned cross-shard forwarding shape (the
// AtmNetwork::ForwardProc / DeliverCrossShard idiom).  Two rules make it
// safe: every borrow is re-fetched generation-checked after a wait, and the
// cross-shard exit never suspends between the last fetch and the mailbox
// post — the delivery time rides the Post's `when`, not a local WaitUntil,
// and the posted callback captures only the owning network plus a slot
// whose lifetime the barrier sweep manages.
#include "src/net/atm.h"

namespace pandora {

Process AtmNetwork::ForwardDirect(AtmPort* src, Vci vci, WireRef wire) {
  Circuit* circuit = FindCircuit(src, vci);
  if (circuit == nullptr) {
    co_return;
  }
  const uint64_t generation = circuit->generation;
  Scheduler* sched = src->sched_;
  const Time exit_at = sched->now() + circuit->direct.propagation;
  if (circuit->dst->shard_ != src->shard_) {
    // Cross-shard exit: no suspension between the fetch above and the post,
    // so the borrow cannot go stale.  exit_at clears the lookahead contract
    // because OpenCircuit pinned propagation >= lookahead.
    DeliverCrossShard(circuit, src, vci, exit_at, 0, wire->bytes.size(),
                      std::move(wire), exit_at);
    co_return;
  }
  co_await sched->WaitUntil(exit_at);
  // Same-shard tail: re-fetch after the wait; teardown or re-open during
  // the flight turns the segment into a loss, never a stale dereference.
  circuit = FindCircuit(src, vci);
  if (circuit == nullptr || circuit->generation != generation) {
    co_return;
  }
  circuit->last_rx_time = sched->now();
  co_return;
}

Process AtmNetwork::ForwardBridged(AtmPort* src, Vci vci, WireRef wire) {
  Scheduler* sched = src->sched_;
  const size_t hops = HopCount(src, vci);
  for (size_t i = 0; i < hops; ++i) {
    // Borrowed fresh on every pass: the previous hop's wait cannot leak a
    // stale pointer into this one.
    Circuit* circuit = FindCircuit(src, vci);
    if (circuit == nullptr) {
      co_return;
    }
    const Time exit_at = sched->now() + circuit->path[i]->quality.propagation;
    if (i + 1 == hops && circuit->dst->shard_ != src->shard_) {
      // Last hop of a cross-shard bridge: post instead of waiting.
      DeliverCrossShard(circuit, src, vci, exit_at, 0, wire->bytes.size(),
                        std::move(wire), exit_at);
      co_return;
    }
    co_await sched->WaitUntil(exit_at);
  }
  co_return;
}

}  // namespace pandora
