// Known-good fixture: overlay code that re-fetches tree state after every
// suspension instead of borrowing across it, and finishes all uses of a
// borrow before the first co_await.
#include <vector>

#include "src/overlay/tree.h"
#include "src/runtime/scheduler.h"

namespace pandora {

Process RepairPulse(Scheduler* sched, StripedTrees* trees, int tree, int node) {
  // All uses of the borrow precede the suspension: nothing goes stale.
  const std::vector<int>& kids = trees->children[tree][node];
  const size_t before = kids.size();
  co_await sched->WaitUntil(sched->now() + Millis(10));
  // Re-fetch after the wait; the repair may have spliced the lists.
  const size_t after = trees->children[tree][node].size();
  (void)before;
  (void)after;
  co_return;
}

}  // namespace pandora
