// Fixture: this virtual path is on THREAD_SANCTIONED_FILES, so the worker
// pool's OS-thread machinery — banned everywhere else in src/ — is clean
// here without per-line suppressions.  bad/src/runtime/bad_threads.cc proves
// the same constructs still flag at any other src/ path.
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "src/runtime/check.h"

namespace pandora {

void RunBarrierRound(std::vector<std::thread>* workers, std::mutex* mu,
                     std::condition_variable* cv, int* busy) {
  PANDORA_CHECK(workers != nullptr);
  {
    std::lock_guard<std::mutex> lock(*mu);
    *busy = static_cast<int>(workers->size());
  }
  cv->notify_all();
  std::unique_lock<std::mutex> lock(*mu);
  cv->wait(lock, [busy] { return *busy == 0; });
}

}  // namespace pandora
