// Fixture: the sanctioned shapes around the std-function-member rule — an
// InlineCallback member (the hot-path replacement), std::function taken as
// a cold-path parameter (does not end the statement, must not match), and a
// documented NOLINT exemption for a cold-path member.
#ifndef PANDORA_SRC_RUNTIME_GOOD_INLINE_CALLBACK_H_
#define PANDORA_SRC_RUNTIME_GOOD_INLINE_CALLBACK_H_

#include <functional>

#include "src/runtime/callback.h"

namespace pandora {

class GoodTimerRecord {
 public:
  // Parameters are fine: the predicate is called once on a cold path and
  // never stored.
  int CountMatching(const std::function<bool(int)>& predicate) const;
  void SetDropHook(std::function<void(int)> hook);

 private:
  TimerCallback fire_;  // inline, fixed-size, allocation-free
  // Deliberate cold-path storage, documented and suppressed:
  std::function<void(int)> drop_hook_;  // NOLINT(pandora-std-function-member): fixture
};

}  // namespace pandora

#endif  // PANDORA_SRC_RUNTIME_GOOD_INLINE_CALLBACK_H_
