// Fixture: the approved awaiter shape — values park in heap-stable channel
// state, never by address into the (possibly relocating) awaiter; also a
// justified NOLINT suppression and static_assert, which must not be flagged.
#ifndef PANDORA_SRC_RUNTIME_GOOD_AWAITER_H_
#define PANDORA_SRC_RUNTIME_GOOD_AWAITER_H_

#include <coroutine>
#include <utility>

#include "src/runtime/check.h"
#include "src/runtime/scheduler.h"

namespace pandora {

template <typename T>
struct GoodSendAwaiter {
  Scheduler* sched;
  T value;

  bool await_ready() const { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    // The value MOVES into heap-stable scheduler-owned storage; no address
    // of an awaiter subobject survives the suspension.
    sched->Park(h, std::move(value));
  }
  void await_resume() const {}
};

static_assert(sizeof(int) == 4);

inline void HostOnlyHelper() {
  // A deliberate, documented exemption: suppressions must silence the rule.
  int* scratch = new int[4];  // NOLINT(pandora-raw-new-delete): fixture
  delete[] scratch;           // NOLINT(pandora-raw-new-delete): fixture
  PANDORA_CHECK(scratch != nullptr);
}

}  // namespace pandora

#endif  // PANDORA_SRC_RUNTIME_GOOD_AWAITER_H_
