// Fixture: the sanctioned ways to touch the recorder outside src/trace/ —
// the PANDORA_TRACE_* macros for recording, and the cold-path setup calls
// (Intern*/Enable/ExportJson).  Simulation::RecordStream-style names that
// merely start with "Record" must not trip the rule either.
#include <string>

#include "src/trace/trace.h"

namespace pandora {

struct GoodSession {
  void RecordStream(int stream) { last_stream = stream; }
  int last_stream = 0;
};

inline void InstrumentViaMacros(TraceRecorder* rec, const std::string& name) {
  static TraceSiteId site = 0;
  PANDORA_TRACE_SPAN(rec, site, name + ".work");
  static TraceSiteId counter_site = 0;
  PANDORA_TRACE_COUNTER(rec, counter_site, name + ".depth", 3);
  static TraceSiteId hist_site = 0;
  PANDORA_TRACE_HISTOGRAM(rec, hist_site, name + ".latency", "us", 125);
}

inline std::string ColdPathSetup(TraceRecorder* rec, GoodSession* session) {
  rec->Enable();
  (void)rec->InternSite("host.setup");
  session->RecordStream(4);
  return rec->ExportJson();
}

}  // namespace pandora
