// Fixture: the sanctioned drain-first shapes (rule batched-drain).
// TrySendBatch hands the prefix to already-parked receivers without a
// dispatch; the single rendezvous Send for the head element is the right
// fallback, not a violation.  A loop that suspends per element on something
// other than Send (pool allocation) is also fine.
#include "src/buffer/small_vec.h"
#include "src/runtime/channel.h"

namespace pandora {

Task<void> ShipBatchDrainFirst(Channel<int>* out, SmallVec<int, 16>& batch) {
  while (!batch.empty()) {
    if (out->TrySendBatch(batch) > 0) {
      continue;  // parked receivers took a prefix with zero dispatches
    }
    int head = batch[0];
    batch.pop_front_n(1);
    co_await out->Send(head);
  }
}

struct FakePool {
  Task<int> Allocate() { co_return 7; }
};

Task<void> BurstAllocate(FakePool* pool, SmallVec<int, 16>& slots) {
  for (size_t i = 0; i < slots.size(); ++i) {
    slots[i] = co_await pool->Allocate();  // suspension, but not a Send
  }
}

}  // namespace pandora
