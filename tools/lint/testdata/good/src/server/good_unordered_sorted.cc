// Known-good fixture: unordered containers are fine for lookup; anything
// order-sensitive iterates a sorted snapshot, and a deliberate unordered
// walk that cannot leak order carries a NOLINT with the reason.

namespace pandora {

void RouteDump::EmitSorted() {
  std::unordered_map<int, int> routes;
  routes[3] = 4;
  routes[1] = 2;
  std::vector<int> keys;
  keys.reserve(routes.size());
  for (const auto& entry : routes) {  // NOLINT(pandora-unordered-iteration): feeds a sorted snapshot; order cannot escape
    keys.push_back(entry.first);
  }
  std::sort(keys.begin(), keys.end());
  for (int key : keys) {
    Print(key, routes[key]);
  }
}

}  // namespace pandora
