// Fixture: the sanctioned data-plane shapes — refcounted SegmentRef
// rendezvous and encoded wire handles.  A tool-side by-value channel may be
// NOLINT-exempted with a reason; tests/ and bench/ are outside the rule's
// scope entirely.
#include "src/net/atm.h"
#include "src/runtime/channel.h"
#include "src/segment/segment.h"

namespace pandora {

struct GoodTap {
  Channel<SegmentRef>* decoded;  // pool handles: no payload copy per hop
  Channel<NetTx>* encoded;       // wire handles: bytes stay immutable
};

inline void WireUp(Scheduler* sched) {
  Channel<SegmentRef> relay(sched, "relay");
  Channel<Segment> scratch(sched, "scratch");  // NOLINT(pandora-segment-channels): host-side capture tap, off the data plane
  (void)scratch.waiting_senders();
  (void)relay.waiting_senders();
}

}  // namespace pandora
