// Known-good fixture: the box crash lifecycle parks its own port with a
// per-line NOLINT carrying the reason (the sanctioned fault-hooks escape).
#include "src/net/atm.h"

namespace pandora {

void ParkOwnPort(AtmNetwork* net, AtmPort* port) {
  net->SetPortUp(port, false);  // NOLINT(pandora-fault-hooks): crash lifecycle
}

}  // namespace pandora
