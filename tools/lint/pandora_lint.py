#!/usr/bin/env python3
"""pandora-lint: repo-specific static analysis for the Pandora codebase.

The simulator's correctness rests on invariants that generic tools do not
know about.  This pass enforces the ones that have bitten us or would be
expensive to debug:

  awaiter-retained-address
      No address of an awaiter subobject may be retained across a suspension
      point.  GCC 12 materializes co_await operand temporaries on the stack
      and copies them into the coroutine frame around the suspension point,
      so a pointer captured into an awaiter during await_suspend may dangle
      by await_resume (see the note at the top of src/runtime/channel.h).
      Flagged: taking the address of an awaiter data member inside
      await_suspend.

  thread-primitives
      src/ runs on a single-threaded discrete-event scheduler; determinism
      is part of the design (reproducible experiments, exact-seed replay).
      OS threads, locks and blocking sleeps would silently break that.
      Flagged: std::thread/mutex/condition_variable/future/async/semaphore,
      <thread>-family includes, pthread_*, sleep()/usleep()/nanosleep().

  include-path
      All project includes are written full-from-root ("src/...", "tests/...",
      "bench/...", "examples/...", "tools/...") so that a file's dependencies
      are visible at a glance and builds do not depend on -I order.

  include-guard
      Headers under src/ use guards derived from their path:
      src/runtime/channel.h -> PANDORA_SRC_RUNTIME_CHANNEL_H_.

  raw-new-delete
      All payload memory comes from the reference-counted BufferPool
      (paper section 3.4); everything else uses containers or unique_ptr.
      Raw new/delete outside src/buffer/ is almost always a leak or a
      double-free waiting to happen.

  std-function-member
      The engine hot path (src/runtime/) is allocation-free in steady state:
      timers, channels and process records all recycle through intrusive
      free lists, and the timer path carries its callable in a fixed-size
      InlineCallback (src/runtime/callback.h).  A std::function member
      re-introduces a type-erased heap allocation per stored callable and
      silently undoes that work.  Flagged: std::function variable/member
      declarations in src/runtime/.  Function parameters (cold-path
      predicates like Scheduler::KillProcesses) are fine and do not match;
      a deliberate cold-path member carries a NOLINT with a reason.

  bare-assert
      assert() vanishes under -DNDEBUG; invariants in src/ must use
      PANDORA_CHECK/PANDORA_DCHECK from src/runtime/check.h, which are
      never silently compiled out (DCHECK still parses its expression).

  trace-macros
      All instrumentation goes through the PANDORA_TRACE_* macros
      (src/trace/trace.h); the macros own the enabled-guards, lazy site
      interning and the compile-out path, so a direct call to
      TraceRecorder::Record* outside src/trace/ silently loses the
      zero-overhead-when-disabled guarantee.  Intern*/Enable/ExportJson
      calls are fine anywhere (they are cold-path setup).

  fault-hooks
      Mid-run impairment of network state (AtmNetwork::SetPortUp /
      RestartPort / SetCircuitQuality / SetCircuitUp / SetHopQuality) is
      reserved to the fault layer.  Anywhere else these mutators bypass the
      FaultDriver's snapshot/restore bookkeeping, so the run stops being
      reproducible from (plan, seed) and nothing puts the parameters back.
      Script the episode in a FaultPlan instead (src/fault/plan.h).  Outside
      src/fault/ and src/net/ the only sanctioned caller is the box crash
      lifecycle (PandoraBox::Crash/Restart parking its own port), which
      carries per-line NOLINT exemptions.

  segment-channels
      The data plane moves refcounted handles, never segments by value: a
      Channel<Segment> deep-copies header + payload at every rendezvous,
      which is exactly the per-hop copying the wire refactor (DESIGN.md
      section 9) removed.  Inside src/, plumb Channel<SegmentRef> (decoded,
      pool-backed) or NetTx/NetRx wire handles (encoded bytes) instead.

Suppress a finding by appending "// NOLINT(pandora-<rule>)" (or a bare
"// NOLINT") to the offending line, with a reason:

    std::mutex m;  // NOLINT(pandora-thread-primitives): host-side tool

Usage:
    pandora_lint.py [--root DIR]      # lint src/ tests/ bench/ examples/
    pandora_lint.py --self-test       # run against tools/lint/testdata/
"""

import argparse
import os
import re
import sys

SCAN_DIRS = ("src", "tests", "bench", "examples")
SOURCE_EXTS = (".h", ".cc", ".cpp")

ALLOWED_INCLUDE_PREFIXES = ("src/", "tests/", "bench/", "examples/", "tools/")

THREAD_PRIMITIVES = [
    r"std::thread\b",
    r"std::jthread\b",
    r"std::mutex\b",
    r"std::timed_mutex\b",
    r"std::recursive_mutex\b",
    r"std::shared_mutex\b",
    r"std::condition_variable\b",
    r"std::counting_semaphore\b",
    r"std::binary_semaphore\b",
    r"std::latch\b",
    r"std::barrier\b",
    r"std::future\b",
    r"std::promise\b",
    r"std::async\b",
    r"std::this_thread\b",
    r"\bpthread_\w+",
    r"(?<![\w.:])(?:sleep|usleep|nanosleep)\s*\(",
]

# std::function declaration that ends its statement (rule
# std-function-member).  A parameter list has ')' between the name and the
# ';', so cold-path predicate parameters do not match.
STD_FUNCTION_MEMBER_RE = re.compile(
    r"std::function\s*<.*>\s*&?\s*[A-Za-z_]\w*\s*(=[^;]*)?;")

# Direct TraceRecorder::Record* call (member access syntax only, so the
# recorder's own definitions and e.g. Simulation::RecordStream stay clean).
TRACE_RECORD_RE = re.compile(
    r"(?:\.|->)\s*Record"
    r"(?:Begin|End|Complete|Instant(?:Args)?|Counter|Async(?:Begin|End)|Histogram)"
    r"\s*\("
)

# Impairment mutators owned by the fault layer (rule fault-hooks).  Plain
# word match: the definitions live in src/net/ and the driver in src/fault/,
# both exempt, so any other occurrence is a call site to flag.
FAULT_HOOK_RE = re.compile(
    r"\b(?:SetPortUp|RestartPort|SetCircuitQuality|SetCircuitUp|SetHopQuality)\s*\("
)
FAULT_HOOK_ALLOWED = ("src/fault/", "src/net/")

# By-value segment rendezvous (rule segment-channels).  SegmentRef/WireRef
# channels are the sanctioned shapes; matching the bare value type keeps the
# regex from firing on them (">" can't appear in "SegmentRef").
SEGMENT_CHANNEL_RE = re.compile(r"\bChannel\s*<\s*Segment\s*>")

THREAD_INCLUDES = [
    "<thread>",
    "<mutex>",
    "<condition_variable>",
    "<shared_mutex>",
    "<semaphore>",
    "<latch>",
    "<barrier>",
    "<future>",
]


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [pandora-{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving line layout.

    Replacement uses spaces (and keeps newlines) so that line/column numbers
    of the surviving code are unchanged.
    """
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw_string
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == "R" and nxt == '"':
                m = re.match(r'R"([^(\s\\"]*)\(', text[i:])
                if m:
                    state = "raw_string"
                    raw_delim = ")" + m.group(1) + '"'
                    out.append(" " * m.end())
                    i += m.end()
                else:
                    out.append(c)
                    i += 1
            elif c == '"':
                state = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                state = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state == "raw_string":
            if text.startswith(raw_delim, i):
                state = "code"
                out.append(" " * len(raw_delim))
                i += len(raw_delim)
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        else:  # string or char
            if c == "\\":
                out.append("  ")
                i += 2
            elif (state == "string" and c == '"') or (state == "char" and c == "'"):
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def nolint_rules(raw_line):
    """Returns None (no suppression), "all", or a set of suppressed rules."""
    m = re.search(r"//\s*NOLINT(?:\(([^)]*)\))?", raw_line)
    if not m:
        return None
    if m.group(1) is None:
        return "all"
    rules = set()
    for entry in m.group(1).split(","):
        entry = entry.strip()
        if entry.startswith("pandora-"):
            entry = entry[len("pandora-"):]
        rules.add(entry)
    return rules


def find_matching_brace(text, open_idx):
    """Index of the '}' matching the '{' at open_idx, or -1."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return -1


def line_of(text, idx):
    return text.count("\n", 0, idx) + 1


MEMBER_RE = re.compile(
    r"^\s*(?!return\b|if\b|for\b|while\b|switch\b|else\b|using\b|typedef\b|"
    r"static_assert\b|public\b|private\b|protected\b|friend\b|template\b|"
    r"struct\b|class\b|enum\b)"
    r"[A-Za-z_][\w:<>,*&\s]*?[\s&*]"
    r"([A-Za-z_]\w*)\s*(?:=[^;]*|\{[^;]*\})?;\s*$",
    re.MULTILINE,
)


def awaiter_members(struct_body):
    """Best-effort list of data member names declared in a struct body."""
    # Only look at top brace level of the struct: blank out nested braces.
    flat = []
    depth = 0
    for c in struct_body:
        if c == "{":
            depth += 1
            flat.append(" ")
        elif c == "}":
            depth -= 1
            flat.append(" ")
        else:
            flat.append(c if depth == 0 else (" " if c != "\n" else "\n"))
    flat = "".join(flat)
    return {m.group(1) for m in MEMBER_RE.finditer(flat)}


def check_awaiter_addresses(relpath, code, raw_lines, report):
    """Rule awaiter-retained-address (see module docstring)."""
    # Find struct/class bodies that define await_suspend.
    for m in re.finditer(r"\b(?:struct|class)\s+([A-Za-z_]\w*)[^;{]*\{", code):
        open_idx = m.end() - 1
        close_idx = find_matching_brace(code, open_idx)
        if close_idx < 0:
            continue
        body = code[open_idx + 1:close_idx]
        if "await_suspend" not in body:
            continue
        members = awaiter_members(body)
        if not members:
            continue
        # Locate the await_suspend function body within the struct.
        fm = re.search(r"await_suspend\s*\([^)]*\)[^{;]*\{", body)
        if not fm:
            continue
        fopen = fm.end() - 1
        fclose = find_matching_brace(body, fopen)
        if fclose < 0:
            continue
        fbody = body[fopen + 1:fclose]
        fbody_abs = open_idx + 1 + fopen + 1  # offset of fbody within `code`
        for am in re.finditer(r"&\s*(?:this\s*->\s*)?([A-Za-z_]\w*)\b", fbody):
            # Skip &&, operator&, and reference-parameter declarations.
            before = fbody[:am.start()].rstrip()
            if before.endswith("&") or before.endswith("operator"):
                continue
            name = am.group(1)
            if name not in members:
                continue
            idx = fbody_abs + am.start()
            report(
                line_of(code, idx),
                "awaiter-retained-address",
                f"address of awaiter member '{name}' taken inside "
                "await_suspend; awaiter frames may be relocated across the "
                "suspension point (GCC 12) — park values in heap-stable "
                "state instead (see src/runtime/channel.h)",
            )


def lint_file(relpath, text):
    """Lints one file; returns a list of Findings (before NOLINT filtering)."""
    findings = []
    raw_lines = text.split("\n")
    code = strip_comments_and_strings(text)
    code_lines = code.split("\n")
    in_src = relpath.startswith("src/")
    is_header = relpath.endswith(".h")

    def report(line, rule, message):
        findings.append(Finding(relpath, line, rule, message))

    # --- include-path ------------------------------------------------------
    for i, line in enumerate(code_lines, 1):
        m = re.match(r'\s*#\s*include\s+"([^"]+)"', raw_lines[i - 1])
        if m and not m.group(1).startswith(ALLOWED_INCLUDE_PREFIXES):
            report(
                i, "include-path",
                f'include "{m.group(1)}" is not written full-from-root '
                "(expected a src/, tests/, bench/, examples/ or tools/ prefix)",
            )

    # --- include-guard (src headers only) ----------------------------------
    if in_src and is_header:
        expected = (
            "PANDORA_" + relpath[:-len(".h")].upper().replace("/", "_").replace(".", "_")
            + "_H_"
        )
        gm = re.search(r"#\s*ifndef\s+(\S+)\s*\n\s*#\s*define\s+(\S+)", code)
        if not gm:
            report(1, "include-guard",
                   f"missing include guard (expected {expected})")
        elif gm.group(1) != expected or gm.group(2) != expected:
            report(line_of(code, gm.start()), "include-guard",
                   f"include guard {gm.group(1)} does not match path "
                   f"(expected {expected})")

    # --- src-only rules -----------------------------------------------------
    if in_src:
        for i, line in enumerate(code_lines, 1):
            raw = raw_lines[i - 1]
            # thread-primitives
            for pat in THREAD_PRIMITIVES:
                m = re.search(pat, line)
                if m:
                    report(i, "thread-primitives",
                           f"'{m.group(0).strip()}' breaks the deterministic "
                           "single-threaded scheduler contract of src/")
            for inc in THREAD_INCLUDES:
                if re.match(r"\s*#\s*include\s+" + re.escape(inc), raw):
                    report(i, "thread-primitives",
                           f"include of {inc} in src/ (threading primitives "
                           "are banned inside the simulator)")
            # bare-assert
            if re.search(r"(?<!static_)\bassert\s*\(", line):
                report(i, "bare-assert",
                       "assert() is compiled out under -DNDEBUG; use "
                       "PANDORA_CHECK/PANDORA_DCHECK (src/runtime/check.h)")
            if re.match(r"\s*#\s*include\s+<(cassert|assert\.h)>", raw):
                report(i, "bare-assert",
                       "include of <cassert> in src/; use "
                       "src/runtime/check.h instead")
            # std-function-member (engine hot path only)
            if relpath.startswith("src/runtime/"):
                m = STD_FUNCTION_MEMBER_RE.search(line)
                if m:
                    report(i, "std-function-member",
                           "std::function stored in src/runtime/ heap-"
                           "allocates its callable; use InlineCallback "
                           "(src/runtime/callback.h) or an intrusive hook, "
                           "or NOLINT a documented cold path")
            # segment-channels
            m = SEGMENT_CHANNEL_RE.search(line)
            if m:
                report(i, "segment-channels",
                       "Channel<Segment> copies header+payload at every "
                       "rendezvous; pass Channel<SegmentRef> (pool handles) "
                       "or NetTx/NetRx wire handles instead (DESIGN.md §9)")
            # raw-new-delete (placement new included; the only exemption is
            # the buffer allocator itself)
            if not relpath.startswith("src/buffer/"):
                if re.search(r"\bnew\b", line):
                    report(i, "raw-new-delete",
                           "raw 'new' outside src/buffer/ — memory comes "
                           "from BufferPool or standard containers")
                dm = re.search(r"\bdelete\b(?!\s*;)", line)
                if dm:
                    report(i, "raw-new-delete",
                           "raw 'delete' outside src/buffer/ — memory comes "
                           "from BufferPool or standard containers")

    # --- trace-macros (everywhere except the recorder itself) ---------------
    if not relpath.startswith("src/trace/"):
        for i, line in enumerate(code_lines, 1):
            m = TRACE_RECORD_RE.search(line)
            if m:
                report(i, "trace-macros",
                       "direct TraceRecorder::Record* call; use the "
                       "PANDORA_TRACE_* macros (src/trace/trace.h), which "
                       "own the enabled-guard and compile-out path")

    # --- fault-hooks (everywhere except the fault layer and the network) ----
    if not relpath.startswith(FAULT_HOOK_ALLOWED):
        for i, line in enumerate(code_lines, 1):
            m = FAULT_HOOK_RE.search(line)
            if m:
                name = m.group(0).rstrip("( \t")
                report(i, "fault-hooks",
                       f"direct impairment call '{name}' outside src/fault/ "
                       "and src/net/ bypasses the FaultDriver's restore "
                       "bookkeeping; script it in a FaultPlan "
                       "(src/fault/plan.h) so the run stays reproducible")

    # --- awaiter-retained-address (everywhere: tests define awaiters too) ---
    check_awaiter_addresses(relpath, code, raw_lines, report)

    # --- NOLINT filtering ---------------------------------------------------
    kept = []
    for f in findings:
        raw = raw_lines[f.line - 1] if 0 < f.line <= len(raw_lines) else ""
        suppressed = nolint_rules(raw)
        if suppressed == "all" or (suppressed and f.rule in suppressed):
            continue
        kept.append(f)
    return kept


def iter_source_files(root, dirs):
    for d in dirs:
        base = os.path.join(root, d)
        for dirpath, _, filenames in os.walk(base):
            for fn in sorted(filenames):
                if fn.endswith(SOURCE_EXTS):
                    full = os.path.join(dirpath, fn)
                    yield os.path.relpath(full, root).replace(os.sep, "/"), full


def run_lint(root, dirs=SCAN_DIRS):
    all_findings = []
    count = 0
    for relpath, full in iter_source_files(root, dirs):
        count += 1
        with open(full, encoding="utf-8", errors="replace") as fh:
            text = fh.read()
        all_findings.extend(lint_file(relpath, text))
    return all_findings, count


EXPECT_RE = re.compile(r"//\s*EXPECT-LINT:\s*([\w-]+)")


def run_self_test(testdata):
    """known-bad fixtures must produce exactly their EXPECT-LINT findings;
    known-good fixtures must be clean."""
    failures = []
    checked = 0
    for relpath, full in iter_source_files(testdata, ["good", "bad"]):
        checked += 1
        with open(full, encoding="utf-8") as fh:
            text = fh.read()
        # Fixtures live under good/<scope>/... and bad/<scope>/...; lint them
        # as if they sat at <scope>/... in the repo.
        kind, _, virtual = relpath.partition("/")
        findings = lint_file(virtual, text)
        expected = {}  # line -> set of rules
        for i, line in enumerate(text.split("\n"), 1):
            for m in EXPECT_RE.finditer(line):
                expected.setdefault(i, set()).add(m.group(1))
        got = {}
        for f in findings:
            got.setdefault(f.line, set()).add(f.rule)
        if kind == "good":
            if findings:
                for f in findings:
                    failures.append(f"{relpath}: unexpected finding: {f}")
        else:
            if got != expected:
                for line in sorted(set(expected) | set(got)):
                    want = expected.get(line, set())
                    have = got.get(line, set())
                    if want != have:
                        failures.append(
                            f"{relpath}:{line}: expected {sorted(want) or 'none'}, "
                            f"got {sorted(have) or 'none'}")
    return failures, checked


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repository root (default: two levels up from this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="lint the known-good/known-bad fixtures in testdata/")
    parser.add_argument("paths", nargs="*",
                        help="specific files to lint (relative to --root)")
    args = parser.parse_args(argv)

    script_dir = os.path.dirname(os.path.abspath(__file__))
    root = args.root or os.path.dirname(os.path.dirname(script_dir))

    if args.self_test:
        failures, checked = run_self_test(os.path.join(script_dir, "testdata"))
        if failures:
            print("\n".join(failures))
            print(f"pandora-lint self-test: FAILED ({len(failures)} mismatches "
                  f"across {checked} fixtures)")
            return 1
        print(f"pandora-lint self-test: OK ({checked} fixtures)")
        return 0

    if args.paths:
        findings = []
        count = 0
        for rel in args.paths:
            full = os.path.join(root, rel)
            count += 1
            try:
                with open(full, encoding="utf-8", errors="replace") as fh:
                    text = fh.read()
            except OSError as e:
                print(f"pandora-lint: error: cannot read {rel}: {e.strerror}", file=sys.stderr)
                return 2
            findings.extend(lint_file(rel.replace(os.sep, "/"), text))
    else:
        findings, count = run_lint(root)

    for f in findings:
        print(f)
    if findings:
        print(f"pandora-lint: {len(findings)} finding(s) in {count} files")
        return 1
    print(f"pandora-lint: OK ({count} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
