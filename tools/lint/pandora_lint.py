#!/usr/bin/env python3
"""pandora-lint: repo-specific static analysis for the Pandora codebase.

The simulator's correctness rests on invariants that generic tools do not
know about.  This pass enforces the ones that have bitten us or would be
expensive to debug:

  awaiter-retained-address
      No address of an awaiter subobject may be retained across a suspension
      point.  GCC 12 materializes co_await operand temporaries on the stack
      and copies them into the coroutine frame around the suspension point,
      so a pointer captured into an awaiter during await_suspend may dangle
      by await_resume (see the note at the top of src/runtime/channel.h).
      Flagged: taking the address of an awaiter data member inside
      await_suspend.

  suspension-borrow
      The generalization of awaiter-retained-address to whole coroutine
      bodies, and the static form of the PR 3 Circuit* use-after-free: a raw
      pointer, reference or iterator borrowed from scheduler-, pool- or
      map-owned state (FindCircuit(), table_.Find(), it->second.get(),
      container.find()/begin(), container[i], WireRef::get(), ...) must not
      be used after a co_await unless it was re-fetched since the
      suspension.  Today a stale borrow is a logic bug only when the owner
      mutates during the wait; under the sharded M:N scheduler (ROADMAP
      item 1) every one of these is a cross-thread use-after-free.  Flagged:
      a use of a borrowed pointer/reference/iterator with a suspension point
      between it and its latest (re)binding, including uses reached through
      a loop back edge; and range-for loops over owned containers whose body
      suspends.  Fix by re-fetching after each co_await (atm.cc ForwardProc
      is the model) or copying the data out before suspending; a borrow
      whose owner is provably immortal carries a NOLINT with the reason.

  unordered-iteration
      Iteration order of std::unordered_{map,set} depends on hash seeding,
      insertion history and libstdc++ version.  Any loop over an unordered
      container whose order can reach dispatch, trace output or golden
      hashes makes runs irreproducible — and under sharding, per-shard
      nondeterminism.  src/ currently has no unordered containers; this
      rule keeps it that way unless iteration is provably order-independent
      (NOLINT with the reason) or runs over a sorted snapshot.

  thread-primitives
      src/ runs on sequential discrete-event schedulers; determinism is part
      of the design (reproducible experiments, exact-seed replay).  OS
      threads, locks and blocking sleeps would silently break that.
      Flagged: std::thread/mutex/condition_variable/future/async/semaphore,
      <thread>-family includes, pthread_*, sleep()/usleep()/nanosleep().
      The sharded M:N scheduler's worker pool (src/runtime/shard_set.*,
      THREAD_SANCTIONED_FILES) is the one sanctioned exception: its barrier
      protocol is what lets every other src/ file stay sequential.

  include-path
      All project includes are written full-from-root ("src/...", "tests/...",
      "bench/...", "examples/...", "tools/...") so that a file's dependencies
      are visible at a glance and builds do not depend on -I order.

  include-guard
      Headers under src/ use guards derived from their path:
      src/runtime/channel.h -> PANDORA_SRC_RUNTIME_CHANNEL_H_.

  raw-new-delete
      All payload memory comes from the reference-counted BufferPool
      (paper section 3.4); everything else uses containers or unique_ptr.
      Raw new/delete outside src/buffer/ is almost always a leak or a
      double-free waiting to happen.

  std-function-member
      The engine hot path (src/runtime/) is allocation-free in steady state:
      timers, channels and process records all recycle through intrusive
      free lists, and the timer path carries its callable in a fixed-size
      InlineCallback (src/runtime/callback.h).  A std::function member
      re-introduces a type-erased heap allocation per stored callable and
      silently undoes that work.  Flagged: std::function variable/member
      declarations in src/runtime/.  Function parameters (cold-path
      predicates like Scheduler::KillProcesses) are fine and do not match;
      a deliberate cold-path member carries a NOLINT with a reason.

  bare-assert
      assert() vanishes under -DNDEBUG; invariants in src/ must use
      PANDORA_CHECK/PANDORA_DCHECK from src/runtime/check.h, which are
      never silently compiled out (DCHECK still parses its expression).

  trace-macros
      All instrumentation goes through the PANDORA_TRACE_* macros
      (src/trace/trace.h); the macros own the enabled-guards, lazy site
      interning and the compile-out path, so a direct call to
      TraceRecorder::Record* outside src/trace/ silently loses the
      zero-overhead-when-disabled guarantee.  Intern*/Enable/ExportJson
      calls are fine anywhere (they are cold-path setup).

  fault-hooks
      Mid-run impairment of network state (AtmNetwork::SetPortUp /
      RestartPort / SetCircuitQuality / SetCircuitUp / SetHopQuality) is
      reserved to the fault layer.  Anywhere else these mutators bypass the
      FaultDriver's snapshot/restore bookkeeping, so the run stops being
      reproducible from (plan, seed) and nothing puts the parameters back.
      Script the episode in a FaultPlan instead (src/fault/plan.h).  Outside
      src/fault/ and src/net/ the only sanctioned caller is the box crash
      lifecycle (PandoraBox::Crash/Restart parking its own port), which
      carries per-line NOLINT exemptions.

  segment-channels
      The data plane moves refcounted handles, never segments by value: a
      Channel<Segment> deep-copies header + payload at every rendezvous,
      which is exactly the per-hop copying the wire refactor (DESIGN.md
      section 9) removed.  Inside src/, plumb Channel<SegmentRef> (decoded,
      pool-backed) or NetTx/NetRx wire handles (encoded bytes) instead.

  batched-drain
      A loop that co_awaits Send once per element of a materialized SmallVec
      batch pays a full dispatch round-trip for every element — the exact
      overhead the batched pipeline (DESIGN.md section 15) exists to
      amortize.  Flagged: a for/while loop whose head or body references a
      SmallVec-typed local or parameter and whose body suspends on
      .Send(...)/->Send(...), in a function that uses neither batch
      primitive (TrySendBatch / TryReceiveBatch).
      Drain the already-parked receivers with TrySendBatch first and fall
      back to ONE rendezvous Send for the head element
      (SendEncodedBatch in src/server/netio.cc is the model), or NOLINT
      with the reason element-at-a-time pacing is intended.

The mutable-global audit (every non-const static in src/ must carry a
PANDORA_SHARD_LOCAL / PANDORA_SHARD_SHARED annotation) is the cross-file
sibling of this tool: tools/lint/shard_audit.py.

Suppress a finding by appending "// NOLINT(pandora-<rule>)" (or a bare
"// NOLINT") to the offending line, with a reason:

    std::mutex m;  // NOLINT(pandora-thread-primitives): host-side tool

Usage:
    pandora_lint.py [--root DIR]      # lint src/ tests/ bench/ examples/
    pandora_lint.py --timing ...      # also print per-rule wall time
    pandora_lint.py --self-test       # run against tools/lint/testdata/
"""

import argparse
import os
import re
import sys
import time

SCAN_DIRS = ("src", "tests", "bench", "examples")
SOURCE_EXTS = (".h", ".cc", ".cpp")

ALLOWED_INCLUDE_PREFIXES = ("src/", "tests/", "bench/", "examples/", "tools/")

# One alternation so the per-line scan is a single regex pass.
THREAD_PRIMITIVES_RE = re.compile(
    r"std::(?:j?thread|timed_mutex|recursive_mutex|shared_mutex|mutex|"
    r"condition_variable|counting_semaphore|binary_semaphore|latch|barrier|"
    r"future|promise|async|this_thread)\b"
    r"|\bpthread_\w+"
    r"|(?<![\w.:])(?:sleep|usleep|nanosleep)\s*\("
)

# std::function declaration that ends its statement (rule
# std-function-member).  A parameter list has ')' between the name and the
# ';', so cold-path predicate parameters do not match.
STD_FUNCTION_MEMBER_RE = re.compile(
    r"std::function\s*<.*>\s*&?\s*[A-Za-z_]\w*\s*(=[^;]*)?;")

# Direct TraceRecorder::Record* call (member access syntax only, so the
# recorder's own definitions and e.g. Simulation::RecordStream stay clean).
TRACE_RECORD_RE = re.compile(
    r"(?:\.|->)\s*Record"
    r"(?:Begin|End|Complete|Instant(?:Args)?|Counter|Async(?:Begin|End)|Histogram)"
    r"\s*\("
)

# Impairment mutators owned by the fault layer (rule fault-hooks).  Plain
# word match: the definitions live in src/net/ and the driver in src/fault/,
# both exempt, so any other occurrence is a call site to flag.
FAULT_HOOK_RE = re.compile(
    r"\b(?:SetPortUp|RestartPort|SetCircuitQuality|SetCircuitUp|SetHopQuality)\s*\("
)
FAULT_HOOK_ALLOWED = ("src/fault/", "src/net/")

# By-value segment rendezvous (rule segment-channels).  SegmentRef/WireRef
# channels are the sanctioned shapes; matching the bare value type keeps the
# regex from firing on them (">" can't appear in "SegmentRef").
SEGMENT_CHANNEL_RE = re.compile(r"\bChannel\s*<\s*Segment\s*>")

THREAD_INCLUDES = [
    "<thread>",
    "<mutex>",
    "<condition_variable>",
    "<shared_mutex>",
    "<semaphore>",
    "<latch>",
    "<barrier>",
    "<future>",
]
THREAD_INCLUDE_RE = re.compile(
    r"\s*#\s*include\s+(" + "|".join(re.escape(i) for i in THREAD_INCLUDES) + ")")

# The sharded M:N scheduler (ROADMAP item 1) is the single sanctioned home of
# OS threading inside src/: its worker pool and conservative-sync barrier are
# exactly the machinery that keeps every *other* src/ file on a sequential
# per-shard event loop.  Everything outside this list still gets flagged, so
# a stray mutex in a protocol file cannot ride in on the sharding precedent.
THREAD_SANCTIONED_FILES = frozenset((
    "src/runtime/shard_set.h",
    "src/runtime/shard_set.cc",
))

BARE_ASSERT_RE = re.compile(r"(?<!static_)\bassert\s*\(")
ASSERT_INCLUDE_RE = re.compile(r"\s*#\s*include\s+<(cassert|assert\.h)>")
INCLUDE_RE = re.compile(r'\s*#\s*include\s+"([^"]+)"')


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [pandora-{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving line layout.

    Replacement uses spaces (and keeps newlines) so that line/column numbers
    of the surviving code are unchanged.
    """
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw_string
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == "R" and nxt == '"':
                m = re.match(r'R"([^(\s\\"]*)\(', text[i:])
                if m:
                    state = "raw_string"
                    raw_delim = ")" + m.group(1) + '"'
                    out.append(" " * m.end())
                    i += m.end()
                else:
                    out.append(c)
                    i += 1
            elif c == '"':
                state = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                if i > 0 and text[i - 1].isdigit() and nxt.isdigit():
                    # C++14 digit separator (64'000), not a char literal.
                    out.append("'")
                    i += 1
                else:
                    state = "char"
                    out.append(" ")
                    i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state == "raw_string":
            if text.startswith(raw_delim, i):
                state = "code"
                out.append(" " * len(raw_delim))
                i += len(raw_delim)
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        else:  # string or char
            if c == "\\":
                out.append("  ")
                i += 2
            elif (state == "string" and c == '"') or (state == "char" and c == "'"):
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def nolint_rules(raw_line):
    """Returns None (no suppression), "all", or a set of suppressed rules."""
    m = re.search(r"//\s*NOLINT(?:\(([^)]*)\))?", raw_line)
    if not m:
        return None
    if m.group(1) is None:
        return "all"
    rules = set()
    for entry in m.group(1).split(","):
        entry = entry.strip()
        if entry.startswith("pandora-"):
            entry = entry[len("pandora-"):]
        rules.add(entry)
    return rules


def find_matching_brace(text, open_idx):
    """Index of the '}' matching the '{' at open_idx, or -1."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return -1


def line_of(text, idx):
    return text.count("\n", 0, idx) + 1


# --- shared per-file context -------------------------------------------------
#
# Every rule works off one FileContext: the file is read once, comment/string-
# stripped once and split once, and the more expensive derived structures
# (function bodies, loop extents) are computed lazily and shared.  Rules must
# not re-read or re-strip the file.

FN_HEAD_KEYWORDS = frozenset((
    "if", "for", "while", "switch", "catch", "return", "co_await", "co_yield",
    "co_return", "sizeof", "alignof", "decltype", "noexcept", "assert",
))

FN_BODY_RE = re.compile(r"\)[^;{}()]*\{")
# A lambda with no parameter list ("[&] { ... }") has no ')' before its body;
# its brace follows the capture list directly.
LAMBDA_NOPAREN_RE = re.compile(r"\]\s*(?:mutable\s*)?(?:noexcept\s*)?\{")
LOOP_HEAD_RE = re.compile(r"\b(for|while)\s*\(")
DO_LOOP_RE = re.compile(r"\bdo\s*\{")
CO_AWAIT_RE = re.compile(r"\bco_(?:await|yield)\b")


class FileContext:
    def __init__(self, relpath, text):
        self.relpath = relpath
        self.text = text
        self.raw_lines = text.split("\n")
        self.code = strip_comments_and_strings(text)
        self.code_lines = self.code.split("\n")
        self.in_src = relpath.startswith("src/")
        self.is_header = relpath.endswith(".h")
        self._fn_bodies = None

    def function_bodies(self):
        """Spans (open_brace_idx, close_brace_idx) of function-like bodies:
        free/member functions and lambdas, excluding control-flow blocks."""
        if self._fn_bodies is None:
            self._fn_bodies = self._find_function_bodies()
        return self._fn_bodies

    def _find_function_bodies(self):
        code = self.code
        bodies = []
        for m in FN_BODY_RE.finditer(code):
            open_brace = m.end() - 1
            # Walk back to the '(' matching the ')' that opened this match.
            depth = 0
            i = m.start()
            while i >= 0:
                if code[i] == ")":
                    depth += 1
                elif code[i] == "(":
                    depth -= 1
                    if depth == 0:
                        break
                i -= 1
            if i < 0:
                continue
            head = code[:i].rstrip()
            kw = re.search(r"([A-Za-z_]\w*)\s*$", head)
            if kw and kw.group(1) in FN_HEAD_KEYWORDS:
                continue  # if (...) { / while (...) { / ... are not functions
            close = find_matching_brace(code, open_brace)
            if close < 0:
                continue
            bodies.append((open_brace, close))
        for m in LAMBDA_NOPAREN_RE.finditer(code):
            open_brace = m.end() - 1
            close = find_matching_brace(code, open_brace)
            if close >= 0:
                bodies.append((open_brace, close))
        return bodies


# --- rule: awaiter-retained-address -----------------------------------------

MEMBER_RE = re.compile(
    r"^\s*(?!return\b|if\b|for\b|while\b|switch\b|else\b|using\b|typedef\b|"
    r"static_assert\b|public\b|private\b|protected\b|friend\b|template\b|"
    r"struct\b|class\b|enum\b)"
    r"[A-Za-z_][\w:<>,*&\s]*?[\s&*]"
    r"([A-Za-z_]\w*)\s*(?:=[^;]*|\{[^;]*\})?;\s*$",
    re.MULTILINE,
)


def awaiter_members(struct_body):
    """Best-effort list of data member names declared in a struct body."""
    # Only look at top brace level of the struct: blank out nested braces.
    flat = []
    depth = 0
    for c in struct_body:
        if c == "{":
            depth += 1
            flat.append(" ")
        elif c == "}":
            depth -= 1
            flat.append(" ")
        else:
            flat.append(c if depth == 0 else (" " if c != "\n" else "\n"))
    flat = "".join(flat)
    return {m.group(1) for m in MEMBER_RE.finditer(flat)}


def rule_awaiter_retained_address(ctx, report):
    """Rule awaiter-retained-address (see module docstring).

    Runs everywhere: tests define awaiters too."""
    code = ctx.code
    # Find struct/class bodies that define await_suspend.
    for m in re.finditer(r"\b(?:struct|class)\s+([A-Za-z_]\w*)[^;{]*\{", code):
        open_idx = m.end() - 1
        close_idx = find_matching_brace(code, open_idx)
        if close_idx < 0:
            continue
        body = code[open_idx + 1:close_idx]
        if "await_suspend" not in body:
            continue
        members = awaiter_members(body)
        if not members:
            continue
        # Locate the await_suspend function body within the struct.
        fm = re.search(r"await_suspend\s*\([^)]*\)[^{;]*\{", body)
        if not fm:
            continue
        fopen = fm.end() - 1
        fclose = find_matching_brace(body, fopen)
        if fclose < 0:
            continue
        fbody = body[fopen + 1:fclose]
        fbody_abs = open_idx + 1 + fopen + 1  # offset of fbody within `code`
        for am in re.finditer(r"&\s*(?:this\s*->\s*)?([A-Za-z_]\w*)\b", fbody):
            # Skip &&, operator&, and reference-parameter declarations.
            before = fbody[:am.start()].rstrip()
            if before.endswith("&") or before.endswith("operator"):
                continue
            name = am.group(1)
            if name not in members:
                continue
            idx = fbody_abs + am.start()
            report(
                line_of(code, idx),
                "awaiter-retained-address",
                f"address of awaiter member '{name}' taken inside "
                "await_suspend; awaiter frames may be relocated across the "
                "suspension point (GCC 12) — park values in heap-stable "
                "state instead (see src/runtime/channel.h)",
            )


# --- rule: suspension-borrow -------------------------------------------------
#
# A per-coroutine dataflow approximation.  Within each function body that
# contains a suspension point:
#
#   1. Collect "borrow" variables: pointer/reference/iterator locals whose
#      initializer reaches into owned state (BORROW_SOURCE_RE below).
#   2. Collect every (re)binding position of each borrow (declaration plus
#      plain assignments — the ForwardProc re-fetch idiom).
#   3. Flag a use when a suspension point lies between the textually latest
#      binding and the use (straight-line staleness), or when the use sits in
#      a loop that suspends and neither the loop tail after its last
#      suspension nor the loop head before the use re-binds the borrow (the
#      back-edge case: iteration N+1 reads a pointer fetched before
#      iteration N's co_await).
#   4. Flag range-for statements whose range expression is a plain member /
#      deref chain (borrowing the container in place, not a returned
#      temporary) and whose body suspends: the hidden begin/end iterators
#      live across every suspension in the body.
#
# One finding per variable per function (the first stale use) keeps the
# output actionable.

BORROW_SOURCE_RE = re.compile(
    r"(?:\.|->)get\s*\(\s*\)"                        # WireRef::get(), unique_ptr::get()
    r"|\bFind\w*\s*\("                               # FindCircuit(), table_.Find()
    r"|->\s*second\b"                                # map-iterator payload
    r"|(?:\.|->)(?:find|begin|cbegin|end|cend|lower_bound|upper_bound)\s*\("
    r"|(?:\.|->)(?:front|back|data)\s*\(\s*\)"
    r"|\]\s*$"                                       # container element: path[i]
)

PTR_REF_DECL_RE = re.compile(
    r"(?:^|[;{}])\s*"
    r"(?:const\s+)?(?:[A-Za-z_][\w:]*(?:<[^<>;]*>)?|auto)\s*[*&]+\s*"
    r"(?P<name>[A-Za-z_]\w*)\s*=\s*(?P<init>[^;]*);"
)

AUTO_DECL_RE = re.compile(
    r"(?:^|[;{}])\s*(?:const\s+)?auto\s+(?P<name>[A-Za-z_]\w*)\s*=\s*(?P<init>[^;]*);"
)

RANGE_FOR_RE = re.compile(
    r"\bfor\s*\(\s*(?:const\s+)?[\w:<>\[\]]+(?:\s*[*&]+\s*|\s+[*&]?\s*)"
    r"[A-Za-z_]\w*\s*:\s*(?P<range>[^)]*)\)\s*\{"
)

# A range expression that borrows the container in place: a member / deref /
# index chain with no function call (a call's return value is a temporary the
# range-for itself owns).
RANGE_BORROW_RE = re.compile(r"^[\w.\->\[\]_\s*&]+$")
RANGE_OWNED_RE = re.compile(r"->|\.|\w_\b|\w_\.")


JUMP_TAIL_RE = re.compile(r"(?:\bcontinue|\bbreak|\bco_return\b[^;{}]*|\breturn\b[^;{}]*)\s*;\s*$")


def _jump_terminated_blocks(body):
    """(open, close) spans of brace blocks whose last statement jumps."""
    blocks = []
    stack = []
    for i, c in enumerate(body):
        if c == "{":
            stack.append(i)
        elif c == "}" and stack:
            bs = stack.pop()
            if JUMP_TAIL_RE.search(body[bs + 1:i].rstrip()):
                blocks.append((bs, i))
    return blocks


def _loop_spans(body):
    """(start, end) spans of loop bodies within `body` (local offsets)."""
    spans = []
    for m in LOOP_HEAD_RE.finditer(body):
        # Skip the loop head's parenthesised clause, then expect '{'.
        depth = 0
        i = m.end() - 1
        n = len(body)
        while i < n:
            if body[i] == "(":
                depth += 1
            elif body[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        if i >= n:
            continue
        j = i + 1
        while j < n and body[j].isspace():
            j += 1
        if j >= n or body[j] != "{":
            continue  # single-statement loop body: nothing suspends in one stmt
        close = find_matching_brace(body, j)
        if close < 0:
            continue
        spans.append((j, close))
    for m in DO_LOOP_RE.finditer(body):
        open_idx = m.end() - 1
        close = find_matching_brace(body, open_idx)
        if close >= 0:
            spans.append((open_idx, close))
    return spans


def rule_suspension_borrow(ctx, report):
    if not ctx.in_src:
        return
    code = ctx.code
    bodies = ctx.function_bodies()
    for (open_brace, close_brace) in bodies:
        body = code[open_brace + 1:close_brace]
        if not CO_AWAIT_RE.search(body):
            continue
        # Mask nested function-like bodies (lambdas, local structs): they are
        # separate coroutine scopes and are analyzed on their own.
        masked = body
        for (o2, c2) in bodies:
            if open_brace < o2 and c2 < close_brace:
                s = o2 - (open_brace + 1)
                e = c2 - (open_brace + 1) + 1
                masked = masked[:s] + re.sub(r"[^\n]", " ", masked[s:e]) + masked[e:]
        # A suspension "takes effect" at the end of its statement: the
        # co_await operand expression is evaluated before suspending, so a
        # borrow used inside the operand is not stale yet.
        suspensions = []
        for m in CO_AWAIT_RE.finditer(masked):
            stmt_end = masked.find(";", m.end())
            suspensions.append(stmt_end if stmt_end >= 0 else m.start())
        if not suspensions:
            continue
        loops = [(ls, le) for (ls, le) in _loop_spans(masked)
                 if any(ls < s < le for s in suspensions)]
        # Blocks whose last statement jumps (continue/break/return/co_return)
        # never fall through: a suspension inside one cannot precede a use
        # beyond its closing brace on any straight-line path.
        jump_blocks = _jump_terminated_blocks(masked)
        base = open_brace + 1  # offset of body within code

        # ---- borrowed locals --------------------------------------------
        borrows = {}  # name -> decl position (local offset)
        for decl_re in (PTR_REF_DECL_RE, AUTO_DECL_RE):
            for m in decl_re.finditer(masked):
                init = m.group("init").rstrip()
                if BORROW_SOURCE_RE.search(init):
                    name = m.group("name")
                    if name not in borrows or m.start("name") < borrows[name]:
                        borrows[name] = m.start("name")

        for name, decl_pos in sorted(borrows.items(), key=lambda kv: kv[1]):
            bind_re = re.compile(r"(?<![\w.])" + re.escape(name) + r"\s*=(?![=])")
            bindings = sorted({decl_pos} |
                              {m.start() for m in bind_re.finditer(masked)})
            use_re = re.compile(r"\b" + re.escape(name) + r"\b")
            flagged = False
            for um in use_re.finditer(masked):
                u = um.start()
                if u <= decl_pos:
                    continue
                if any(b <= u < b + len(name) + 4 for b in bindings):
                    continue  # this occurrence is a (re)binding, not a use
                latest = max((b for b in bindings if b < u), default=decl_pos)
                stale = any(
                    latest < s < u and not any(
                        bs < s < be < u for (bs, be) in jump_blocks)
                    for s in suspensions)
                if not stale:
                    for (ls, le) in loops:
                        if not (ls < u < le):
                            continue
                        s_last = max(s for s in suspensions if ls < s < le)
                        rebinds_tail = any(s_last < b < le for b in bindings)
                        rebinds_head = any(ls < b < u for b in bindings)
                        if not rebinds_tail and not rebinds_head:
                            stale = True
                            break
                if stale:
                    report(
                        line_of(code, base + u),
                        "suspension-borrow",
                        f"'{name}' borrows owned state (declared at line "
                        f"{line_of(code, base + decl_pos)}) and is used after "
                        "a co_await without being re-fetched; the owner can "
                        "mutate during the suspension — and will, once shards "
                        "run in parallel (ROADMAP item 1).  Re-fetch after "
                        "every suspension (see AtmNetwork::ForwardProc), copy "
                        "the data out first, or NOLINT with the reason the "
                        "owner is stable",
                    )
                    flagged = True
                    break  # one finding per borrow per function
            del flagged

        # ---- range-for over owned containers ----------------------------
        for m in RANGE_FOR_RE.finditer(masked):
            range_expr = m.group("range").strip()
            if not RANGE_BORROW_RE.match(range_expr):
                continue  # call result: a temporary owned by the loop itself
            if not RANGE_OWNED_RE.search(range_expr):
                continue  # plain local: frame-owned, safe across suspension
            fopen = m.end() - 1
            fclose = find_matching_brace(masked, fopen)
            if fclose < 0:
                continue
            if not CO_AWAIT_RE.search(masked[fopen:fclose]):
                continue
            report(
                line_of(code, base + m.start()),
                "suspension-borrow",
                f"range-for over '{range_expr}' holds iterators into owned "
                "state across the suspension points in its body; growth, "
                "repack or teardown during a wait invalidates them.  Iterate "
                "by index with a per-step bounds check, copy the element out "
                "before suspending, or NOLINT with the reason the container "
                "cannot change",
            )


# --- rule: batched-drain ------------------------------------------------------
#
# Within each function body: collect SmallVec-typed names (locals plus
# reference parameters), then flag any loop whose head or body mentions one
# of them while the loop body suspends on a channel Send.  A function that
# calls TrySendBatch anywhere is exempt — that is the drain-first idiom, and
# its single Send fallback for the head element is exactly right.

SMALLVEC_NAME_RE = re.compile(
    r"\bSmallVec\s*<[^;{}()]*>\s*[&*]?\s*(?P<name>[A-Za-z_]\w*)\s*[;,)={(\[]"
)
SEND_AWAIT_RE = re.compile(r"\bco_await\b[^;]*(?:\.|->)\s*Send\s*\(")


def _loop_head_and_body_spans(body):
    """(head_start, head_end, body_start, body_end) for for/while loops,
    including single-statement bodies (no braces)."""
    spans = []
    n = len(body)
    for m in LOOP_HEAD_RE.finditer(body):
        depth = 0
        i = m.end() - 1
        while i < n:
            if body[i] == "(":
                depth += 1
            elif body[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        if i >= n:
            continue
        head_start, head_end = m.start(), i + 1
        j = i + 1
        while j < n and body[j].isspace():
            j += 1
        if j < n and body[j] == "{":
            close = find_matching_brace(body, j)
            if close < 0:
                continue
            spans.append((head_start, head_end, j + 1, close))
        else:
            stmt_end = body.find(";", j)
            if stmt_end >= 0:
                spans.append((head_start, head_end, j, stmt_end + 1))
    return spans


def rule_batched_drain(ctx, report):
    if not ctx.in_src:
        return
    code = ctx.code
    for (open_brace, close_brace) in ctx.function_bodies():
        body = code[open_brace + 1:close_brace]
        if not CO_AWAIT_RE.search(body):
            continue
        if "TrySendBatch" in body or "TryReceiveBatch" in body:
            # Already batch-aware: the fallback Send of a drain-first loop,
            # or an ingress drain whose per-element forwards are harvested
            # in bulk by the next stage's own TryReceiveBatch.
            continue
        # SmallVec names declared in the body or taken as parameters (the
        # parameter list sits just before the body's opening brace).
        head_start = max(code.rfind(";", 0, open_brace),
                         code.rfind("}", 0, open_brace)) + 1
        scope = code[head_start:open_brace] + body
        names = {m.group("name") for m in SMALLVEC_NAME_RE.finditer(scope)}
        if not names:
            continue
        name_re = re.compile(r"\b(?:" + "|".join(re.escape(n) for n in sorted(names)) + r")\b")
        for (hs, he, bs, be) in _loop_head_and_body_spans(body):
            loop_body = body[bs:be]
            if not SEND_AWAIT_RE.search(loop_body):
                continue
            if not (name_re.search(body[hs:he]) or name_re.search(loop_body)):
                continue
            report(
                line_of(code, open_brace + 1 + hs),
                "batched-drain",
                "loop sends a materialized SmallVec batch one co_await at a "
                "time — a dispatch round-trip per element.  Drain parked "
                "receivers with TrySendBatch first and fall back to one "
                "rendezvous Send (DESIGN.md §15; SendEncodedBatch in "
                "src/server/netio.cc is the model), or NOLINT with the "
                "reason element-at-a-time pacing is intended",
            )
            break  # one finding per function keeps the output actionable


# --- rule: unordered-iteration ----------------------------------------------

UNORDERED_DECL_RE = re.compile(
    r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s+"
    r"(?P<name>[A-Za-z_]\w*)\s*[;{=(]"
)
ANY_RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*:\s*(?P<range>[^)]*)\)")


def rule_unordered_iteration(ctx, report):
    if not ctx.in_src:
        return
    code = ctx.code
    names = {m.group("name") for m in UNORDERED_DECL_RE.finditer(code)}
    if not names:
        return
    name_alt = "|".join(re.escape(n) for n in sorted(names))
    begin_re = re.compile(r"\b(" + name_alt + r")\s*(?:\.|->)\s*c?begin\s*\(")
    member_re = re.compile(r"\b(" + name_alt + r")\b")
    msg = (
        "iterates an unordered container ('{}'); the visit order depends on "
        "hash seed and insertion history, so anything it feeds — dispatch, "
        "trace output, golden hashes — goes nondeterministic (and per-shard "
        "divergent under ROADMAP item 1).  Iterate a sorted snapshot, use "
        "std::map, or NOLINT with the reason order cannot escape"
    )
    for m in ANY_RANGE_FOR_RE.finditer(code):
        hit = member_re.search(m.group("range"))
        if hit:
            report(line_of(code, m.start()), "unordered-iteration",
                   msg.format(hit.group(1)))
    for m in begin_re.finditer(code):
        report(line_of(code, m.start()), "unordered-iteration",
               msg.format(m.group(1)))


# --- line-scan rules ---------------------------------------------------------


def rule_include_path(ctx, report):
    for i, raw in enumerate(ctx.raw_lines, 1):
        m = INCLUDE_RE.match(raw)
        if m and not m.group(1).startswith(ALLOWED_INCLUDE_PREFIXES):
            report(
                i, "include-path",
                f'include "{m.group(1)}" is not written full-from-root '
                "(expected a src/, tests/, bench/, examples/ or tools/ prefix)",
            )


def rule_include_guard(ctx, report):
    if not (ctx.in_src and ctx.is_header):
        return
    relpath = ctx.relpath
    expected = (
        "PANDORA_" + relpath[:-len(".h")].upper().replace("/", "_").replace(".", "_")
        + "_H_"
    )
    gm = re.search(r"#\s*ifndef\s+(\S+)\s*\n\s*#\s*define\s+(\S+)", ctx.code)
    if not gm:
        report(1, "include-guard",
               f"missing include guard (expected {expected})")
    elif gm.group(1) != expected or gm.group(2) != expected:
        report(line_of(ctx.code, gm.start()), "include-guard",
               f"include guard {gm.group(1)} does not match path "
               f"(expected {expected})")


def rule_thread_primitives(ctx, report):
    if not ctx.in_src or ctx.relpath in THREAD_SANCTIONED_FILES:
        return
    for i, line in enumerate(ctx.code_lines, 1):
        for m in THREAD_PRIMITIVES_RE.finditer(line):
            report(i, "thread-primitives",
                   f"'{m.group(0).strip()}' breaks the deterministic "
                   "single-threaded scheduler contract of src/")
        im = THREAD_INCLUDE_RE.match(ctx.raw_lines[i - 1])
        if im:
            report(i, "thread-primitives",
                   f"include of {im.group(1)} in src/ (threading primitives "
                   "are banned inside the simulator)")


def rule_bare_assert(ctx, report):
    if not ctx.in_src:
        return
    for i, line in enumerate(ctx.code_lines, 1):
        if BARE_ASSERT_RE.search(line):
            report(i, "bare-assert",
                   "assert() is compiled out under -DNDEBUG; use "
                   "PANDORA_CHECK/PANDORA_DCHECK (src/runtime/check.h)")
        if ASSERT_INCLUDE_RE.match(ctx.raw_lines[i - 1]):
            report(i, "bare-assert",
                   "include of <cassert> in src/; use "
                   "src/runtime/check.h instead")


def rule_std_function_member(ctx, report):
    if not ctx.relpath.startswith("src/runtime/"):
        return
    for i, line in enumerate(ctx.code_lines, 1):
        if STD_FUNCTION_MEMBER_RE.search(line):
            report(i, "std-function-member",
                   "std::function stored in src/runtime/ heap-"
                   "allocates its callable; use InlineCallback "
                   "(src/runtime/callback.h) or an intrusive hook, "
                   "or NOLINT a documented cold path")


def rule_segment_channels(ctx, report):
    if not ctx.in_src:
        return
    for i, line in enumerate(ctx.code_lines, 1):
        if SEGMENT_CHANNEL_RE.search(line):
            report(i, "segment-channels",
                   "Channel<Segment> copies header+payload at every "
                   "rendezvous; pass Channel<SegmentRef> (pool handles) "
                   "or NetTx/NetRx wire handles instead (DESIGN.md §9)")


def rule_raw_new_delete(ctx, report):
    # Placement new included; the only exemption is the buffer allocator.
    if not ctx.in_src or ctx.relpath.startswith("src/buffer/"):
        return
    for i, line in enumerate(ctx.code_lines, 1):
        if re.search(r"\bnew\b", line):
            report(i, "raw-new-delete",
                   "raw 'new' outside src/buffer/ — memory comes "
                   "from BufferPool or standard containers")
        if re.search(r"\bdelete\b(?!\s*;)", line):
            report(i, "raw-new-delete",
                   "raw 'delete' outside src/buffer/ — memory comes "
                   "from BufferPool or standard containers")


def rule_trace_macros(ctx, report):
    if ctx.relpath.startswith("src/trace/"):
        return
    for i, line in enumerate(ctx.code_lines, 1):
        if TRACE_RECORD_RE.search(line):
            report(i, "trace-macros",
                   "direct TraceRecorder::Record* call; use the "
                   "PANDORA_TRACE_* macros (src/trace/trace.h), which "
                   "own the enabled-guard and compile-out path")


def rule_fault_hooks(ctx, report):
    if ctx.relpath.startswith(FAULT_HOOK_ALLOWED):
        return
    for i, line in enumerate(ctx.code_lines, 1):
        m = FAULT_HOOK_RE.search(line)
        if m:
            name = m.group(0).rstrip("( \t")
            report(i, "fault-hooks",
                   f"direct impairment call '{name}' outside src/fault/ "
                   "and src/net/ bypasses the FaultDriver's restore "
                   "bookkeeping; script it in a FaultPlan "
                   "(src/fault/plan.h) so the run stays reproducible")


# Registry: (rule id used for timing, function).  A function may report
# findings under more than one closely-related message but always under the
# id it is registered with.
RULES = [
    ("include-path", rule_include_path),
    ("include-guard", rule_include_guard),
    ("thread-primitives", rule_thread_primitives),
    ("bare-assert", rule_bare_assert),
    ("std-function-member", rule_std_function_member),
    ("segment-channels", rule_segment_channels),
    ("batched-drain", rule_batched_drain),
    ("raw-new-delete", rule_raw_new_delete),
    ("trace-macros", rule_trace_macros),
    ("fault-hooks", rule_fault_hooks),
    ("awaiter-retained-address", rule_awaiter_retained_address),
    ("suspension-borrow", rule_suspension_borrow),
    ("unordered-iteration", rule_unordered_iteration),
]

# rule id -> accumulated seconds across all linted files this run.
RULE_TIMES = {}


def lint_file(relpath, text):
    """Lints one file; returns a list of Findings (after NOLINT filtering)."""
    ctx = FileContext(relpath, text)
    findings = []

    def report(line, rule, message):
        findings.append(Finding(relpath, line, rule, message))

    for rule_id, fn in RULES:
        started = time.perf_counter()
        fn(ctx, report)
        RULE_TIMES[rule_id] = RULE_TIMES.get(rule_id, 0.0) + (
            time.perf_counter() - started)

    kept = []
    for f in findings:
        raw = ctx.raw_lines[f.line - 1] if 0 < f.line <= len(ctx.raw_lines) else ""
        suppressed = nolint_rules(raw)
        if suppressed == "all" or (suppressed and f.rule in suppressed):
            continue
        kept.append(f)
    return kept


def print_rule_times(out=sys.stdout):
    total = sum(RULE_TIMES.values())
    print("pandora-lint per-rule timing:", file=out)
    for rule_id, secs in sorted(RULE_TIMES.items(), key=lambda kv: -kv[1]):
        share = (100.0 * secs / total) if total > 0 else 0.0
        print(f"  {rule_id:<26} {secs * 1000:8.2f} ms  {share:5.1f}%", file=out)
    print(f"  {'total':<26} {total * 1000:8.2f} ms", file=out)


def iter_source_files(root, dirs):
    for d in dirs:
        base = os.path.join(root, d)
        for dirpath, _, filenames in os.walk(base):
            for fn in sorted(filenames):
                if fn.endswith(SOURCE_EXTS):
                    full = os.path.join(dirpath, fn)
                    yield os.path.relpath(full, root).replace(os.sep, "/"), full


def run_lint(root, dirs=SCAN_DIRS):
    all_findings = []
    count = 0
    for relpath, full in iter_source_files(root, dirs):
        count += 1
        with open(full, encoding="utf-8", errors="replace") as fh:
            text = fh.read()
        all_findings.extend(lint_file(relpath, text))
    return all_findings, count


EXPECT_RE = re.compile(r"//\s*EXPECT-LINT:\s*([\w-]+)")


def run_self_test(testdata):
    """known-bad fixtures must produce exactly their EXPECT-LINT findings;
    known-good fixtures must be clean."""
    failures = []
    checked = 0
    for relpath, full in iter_source_files(testdata, ["good", "bad"]):
        checked += 1
        with open(full, encoding="utf-8") as fh:
            text = fh.read()
        # Fixtures live under good/<scope>/... and bad/<scope>/...; lint them
        # as if they sat at <scope>/... in the repo.
        kind, _, virtual = relpath.partition("/")
        findings = lint_file(virtual, text)
        expected = {}  # line -> set of rules
        for i, line in enumerate(text.split("\n"), 1):
            for m in EXPECT_RE.finditer(line):
                expected.setdefault(i, set()).add(m.group(1))
        got = {}
        for f in findings:
            got.setdefault(f.line, set()).add(f.rule)
        if kind == "good":
            if findings:
                for f in findings:
                    failures.append(f"{relpath}: unexpected finding: {f}")
        else:
            if got != expected:
                for line in sorted(set(expected) | set(got)):
                    want = expected.get(line, set())
                    have = got.get(line, set())
                    if want != have:
                        failures.append(
                            f"{relpath}:{line}: expected {sorted(want) or 'none'}, "
                            f"got {sorted(have) or 'none'}")
    return failures, checked


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repository root (default: two levels up from this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="lint the known-good/known-bad fixtures in testdata/")
    parser.add_argument("--timing", action="store_true",
                        help="print per-rule wall time after the run")
    parser.add_argument("paths", nargs="*",
                        help="specific files to lint (relative to --root)")
    args = parser.parse_args(argv)

    script_dir = os.path.dirname(os.path.abspath(__file__))
    root = args.root or os.path.dirname(os.path.dirname(script_dir))

    if args.self_test:
        failures, checked = run_self_test(os.path.join(script_dir, "testdata"))
        if args.timing:
            print_rule_times()
        if failures:
            print("\n".join(failures))
            print(f"pandora-lint self-test: FAILED ({len(failures)} mismatches "
                  f"across {checked} fixtures)")
            return 1
        print(f"pandora-lint self-test: OK ({checked} fixtures)")
        return 0

    if args.paths:
        findings = []
        count = 0
        for rel in args.paths:
            full = os.path.join(root, rel)
            count += 1
            try:
                with open(full, encoding="utf-8", errors="replace") as fh:
                    text = fh.read()
            except OSError as e:
                print(f"pandora-lint: error: cannot read {rel}: {e.strerror}", file=sys.stderr)
                return 2
            findings.extend(lint_file(rel.replace(os.sep, "/"), text))
    else:
        findings, count = run_lint(root)

    for f in findings:
        print(f)
    if args.timing:
        print_rule_times()
    if findings:
        print(f"pandora-lint: {len(findings)} finding(s) in {count} files")
        return 1
    print(f"pandora-lint: OK ({count} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
